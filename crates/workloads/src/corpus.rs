//! The on-disk corpus tier: a catalog-backed store of persisted traces.
//!
//! A [`CorpusStore`] manages a directory of corpus files (the chunked,
//! compressed container of [`ev8_trace::corpus`]) plus a small text
//! catalog, `catalog.tsv`, mapping workload identities to files with
//! pinned metadata. The identity key is the full generator identity —
//! `(benchmark, seed, scaled instructions, spec fingerprint, corpus
//! format version)` — so a corpus built from one spec can never shadow a
//! trace a *different* spec (same name/seed/length, different behaviour
//! mix, or a newer generator algorithm) would regenerate; see
//! [`ProgramSpec::fingerprint`].
//!
//! The catalog pins each entry's record and instruction counts. Opening
//! an entry cross-checks them against the corpus header (which the
//! format itself cross-checks against what actually decodes), so a
//! swapped or stale file fails loudly instead of feeding a simulation
//! the wrong workload.
//!
//! # Catalog format (version 1)
//!
//! Line 1 is the header `# ev8-corpus-catalog v1`; every further
//! non-empty line is one tab-separated entry:
//!
//! ```text
//! benchmark  seed(hex)  instructions  scale_ppm  fingerprint(hex)
//! format_version  record_count  instruction_count  file
//! ```
//!
//! # Example
//!
//! ```no_run
//! use ev8_workloads::corpus::CorpusStore;
//! use ev8_workloads::spec95;
//!
//! let mut store = CorpusStore::open("corpus".as_ref()).unwrap();
//! let spec = spec95::benchmark("compress").unwrap();
//! let entry = store.build(&spec, 0.01).unwrap();
//! assert_eq!(entry.benchmark, "compress");
//! store.verify_all().unwrap();
//! ```

use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use ev8_trace::corpus::{CorpusReader, CorpusWriter, CORPUS_VERSION};
use ev8_trace::TraceError;

use crate::program::ProgramSpec;

/// First line of every catalog file; the trailing number is the catalog
/// (not corpus) format version.
const CATALOG_HEADER: &str = "# ev8-corpus-catalog v1";

/// Catalog file name inside the store directory.
const CATALOG_FILE: &str = "catalog.tsv";

/// Errors from the corpus store: I/O, corpus decode, or catalog /
/// metadata inconsistencies.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A corpus file failed to decode (carries the byte offset).
    Trace(TraceError),
    /// The catalog file is malformed at the given line (1-based).
    Catalog {
        /// 1-based line number in `catalog.tsv`.
        line: usize,
        /// What was malformed.
        what: &'static str,
    },
    /// A corpus file disagrees with its catalog entry's pinned metadata.
    Metadata {
        /// Which pinned field mismatched.
        what: &'static str,
        /// The entry's file name.
        file: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "corpus store i/o error: {e}"),
            StoreError::Trace(e) => write!(f, "corpus decode error: {e}"),
            StoreError::Catalog { line, what } => {
                write!(f, "malformed corpus catalog ({what} at line {line})")
            }
            StoreError::Metadata { what, file } => {
                write!(
                    f,
                    "corpus file {file:?} disagrees with its catalog entry ({what})"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<TraceError> for StoreError {
    fn from(e: TraceError) -> Self {
        StoreError::Trace(e)
    }
}

/// One catalog row: a workload identity pinned to a corpus file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogEntry {
    /// Benchmark (spec) name.
    pub benchmark: String,
    /// Generator seed.
    pub seed: u64,
    /// Scaled target instruction count — the exact `u64` the cache keys
    /// on, not the float scale.
    pub instructions: u64,
    /// The build-time scale in parts per million (informational; the
    /// identity key is `instructions`).
    pub scale_ppm: u64,
    /// [`ProgramSpec::fingerprint`] of the scaled spec.
    pub fingerprint: u64,
    /// Corpus container format version the file was written with.
    pub format_version: u16,
    /// Pinned record count the file must decode to.
    pub record_count: u64,
    /// Pinned instruction count (records + gaps) the file must decode to.
    pub instruction_count: u64,
    /// File name, relative to the store directory.
    pub file: String,
}

impl CatalogEntry {
    fn to_line(&self) -> String {
        format!(
            "{}\t{:#x}\t{}\t{}\t{:#x}\t{}\t{}\t{}\t{}",
            self.benchmark,
            self.seed,
            self.instructions,
            self.scale_ppm,
            self.fingerprint,
            self.format_version,
            self.record_count,
            self.instruction_count,
            self.file
        )
    }

    fn parse(line: &str, lineno: usize) -> Result<CatalogEntry, StoreError> {
        let bad = |what| StoreError::Catalog { line: lineno, what };
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 9 {
            return Err(bad("wrong field count"));
        }
        let uint = |s: &str, what: &'static str| -> Result<u64, StoreError> {
            if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).map_err(|_| bad(what))
            } else {
                s.parse().map_err(|_| bad(what))
            }
        };
        if fields[0].is_empty() || fields[8].is_empty() {
            return Err(bad("empty benchmark or file name"));
        }
        // File names are store-relative by construction; a path that
        // escapes the directory is never valid.
        if fields[8].contains('/') || fields[8].contains('\\') || fields[8] == ".." {
            return Err(bad("file name is not store-relative"));
        }
        Ok(CatalogEntry {
            benchmark: fields[0].to_owned(),
            seed: uint(fields[1], "bad seed")?,
            instructions: uint(fields[2], "bad instruction target")?,
            scale_ppm: uint(fields[3], "bad scale")?,
            fingerprint: uint(fields[4], "bad fingerprint")?,
            format_version: uint(fields[5], "bad format version")?
                .try_into()
                .map_err(|_| bad("bad format version"))?,
            record_count: uint(fields[6], "bad record count")?,
            instruction_count: uint(fields[7], "bad instruction count")?,
            file: fields[8].to_owned(),
        })
    }
}

/// The scaled-spec identity a lookup resolves: exact instruction count
/// plus generator fingerprint.
fn resolve(spec: &ProgramSpec, scale: f64) -> (u64, u64) {
    assert!(scale > 0.0, "scale must be positive");
    let instructions = ((spec.instructions as f64) * scale).max(1.0) as u64;
    let mut scaled = spec.clone();
    scaled.instructions = instructions;
    (instructions, scaled.fingerprint())
}

/// A directory of corpus files plus their catalog; see the module docs.
pub struct CorpusStore {
    dir: PathBuf,
    entries: Vec<CatalogEntry>,
}

impl CorpusStore {
    /// Opens (or initializes) the store at `dir`: creates the directory
    /// if needed and parses `catalog.tsv` when present (a missing
    /// catalog is an empty store, not an error).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, [`StoreError::Catalog`]
    /// when an existing catalog is malformed.
    pub fn open(dir: &Path) -> Result<CorpusStore, StoreError> {
        fs::create_dir_all(dir)?;
        let catalog = dir.join(CATALOG_FILE);
        let mut entries = Vec::new();
        if catalog.exists() {
            let text = fs::read_to_string(&catalog)?;
            let mut lines = text.lines().enumerate();
            match lines.next() {
                Some((_, first)) if first.trim_end() == CATALOG_HEADER => {}
                _ => {
                    return Err(StoreError::Catalog {
                        line: 1,
                        what: "missing catalog header",
                    })
                }
            }
            for (i, line) in lines {
                let line = line.trim_end();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                entries.push(CatalogEntry::parse(line, i + 1)?);
            }
        }
        Ok(CorpusStore {
            dir: dir.to_owned(),
            entries,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All catalog entries, in catalog order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Number of catalog entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the entry matching `spec` at `scale`: benchmark, seed,
    /// exact scaled instruction count, generator fingerprint **and**
    /// current corpus format version must all match. Entries written by
    /// an older format or a different generator are invisible — they can
    /// never shadow a regeneration.
    pub fn find(&self, spec: &ProgramSpec, scale: f64) -> Option<&CatalogEntry> {
        let (instructions, fingerprint) = resolve(spec, scale);
        self.entries.iter().find(|e| {
            e.benchmark == spec.name
                && e.seed == spec.seed
                && e.instructions == instructions
                && e.fingerprint == fingerprint
                && e.format_version == CORPUS_VERSION
        })
    }

    /// Like [`CorpusStore::find`], but keyed by the wire-friendly
    /// parts-per-million scale a client names instead of an `f64` (the
    /// server path: `BEGIN_WORKLOAD{name, scale_ppm}`). The fingerprint
    /// is recomputed at the entry's pinned instruction count, so the
    /// generator-identity guarantee is the same.
    pub fn find_by_ppm(&self, spec: &ProgramSpec, scale_ppm: u64) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| {
            if e.benchmark != spec.name
                || e.seed != spec.seed
                || e.scale_ppm != scale_ppm
                || e.format_version != CORPUS_VERSION
            {
                return false;
            }
            let mut scaled = spec.clone();
            scaled.instructions = e.instructions;
            e.fingerprint == scaled.fingerprint()
        })
    }

    /// Opens a streaming reader for `entry`, cross-checking the corpus
    /// header against the entry's pinned name and counts before any
    /// chunk is decoded.
    ///
    /// # Errors
    ///
    /// [`StoreError::Metadata`] when the file disagrees with the pins,
    /// [`StoreError::Trace`] / [`StoreError::Io`] on decode or I/O
    /// failure.
    pub fn open_reader(
        &self,
        entry: &CatalogEntry,
    ) -> Result<CorpusReader<BufReader<File>>, StoreError> {
        let file = File::open(self.dir.join(&entry.file))?;
        let reader = CorpusReader::new(BufReader::new(file))?;
        let mismatch = |what: &'static str| StoreError::Metadata {
            what,
            file: entry.file.clone(),
        };
        if reader.name() != entry.benchmark {
            return Err(mismatch("benchmark name"));
        }
        if reader.record_count() != entry.record_count {
            return Err(mismatch("record count"));
        }
        if reader.instruction_count() != entry.instruction_count {
            return Err(mismatch("instruction count"));
        }
        Ok(reader)
    }

    /// Generates `spec` at `scale`, writes it as a corpus file and
    /// catalogs it, replacing any existing entry with the same identity.
    /// Returns the new entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] / [`StoreError::Trace`] on write failure.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn build(&mut self, spec: &ProgramSpec, scale: f64) -> Result<CatalogEntry, StoreError> {
        let (instructions, fingerprint) = resolve(spec, scale);
        let mut scaled = spec.clone();
        scaled.instructions = instructions;
        let trace = scaled.generate();
        let file = format!("{}-{}-{:016x}.ev8c", spec.name, instructions, fingerprint);
        let path = self.dir.join(&file);
        let mut writer = CorpusWriter::new(trace.name());
        for rec in trace.records() {
            writer.push(rec);
        }
        let mut out = BufWriter::new(File::create(&path)?);
        writer.finish(&mut out)?;
        out.flush()?;
        let entry = CatalogEntry {
            benchmark: spec.name.clone(),
            seed: spec.seed,
            instructions,
            scale_ppm: (scale * 1e6).round() as u64,
            fingerprint,
            format_version: CORPUS_VERSION,
            record_count: trace.len() as u64,
            instruction_count: trace.instruction_count(),
            file,
        };
        self.entries.retain(|e| {
            !(e.benchmark == entry.benchmark
                && e.seed == entry.seed
                && e.instructions == entry.instructions
                && e.fingerprint == entry.fingerprint
                && e.format_version == entry.format_version)
        });
        self.entries.push(entry.clone());
        self.write_catalog()?;
        Ok(entry)
    }

    /// Fully decodes `entry`'s file, verifying every chunk checksum and
    /// the pinned totals. Returns the decoded record count.
    ///
    /// # Errors
    ///
    /// See [`CorpusStore::open_reader`]; additionally any decode error
    /// the full walk surfaces.
    pub fn verify(&self, entry: &CatalogEntry) -> Result<u64, StoreError> {
        let reader = self.open_reader(entry)?;
        let mut records = 0u64;
        reader.for_each_block(|block| records += block.len() as u64)?;
        // for_each_block's end-of-stream validation already proved the
        // decoded totals equal the header's, and open_reader pinned the
        // header to the catalog — this is belt and braces.
        if records != entry.record_count {
            return Err(StoreError::Metadata {
                what: "decoded record count",
                file: entry.file.clone(),
            });
        }
        Ok(records)
    }

    /// [`CorpusStore::verify`] over every catalog entry.
    ///
    /// # Errors
    ///
    /// The first verification failure, if any.
    pub fn verify_all(&self) -> Result<(), StoreError> {
        for entry in &self.entries {
            self.verify(entry)?;
        }
        Ok(())
    }

    fn write_catalog(&self) -> Result<(), StoreError> {
        let mut text = String::from(CATALOG_HEADER);
        text.push('\n');
        for entry in &self.entries {
            text.push_str(&entry.to_line());
            text.push('\n');
        }
        // Write-then-rename so a crash mid-write never leaves a torn
        // catalog behind.
        let tmp = self.dir.join("catalog.tsv.tmp");
        fs::write(&tmp, &text)?;
        fs::rename(&tmp, self.dir.join(CATALOG_FILE))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec95;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ev8-corpus-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> ProgramSpec {
        let mut spec = spec95::benchmark("compress").unwrap();
        spec.instructions = 40_000;
        spec
    }

    #[test]
    fn build_catalog_find_verify_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut store = CorpusStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let spec = tiny_spec();
        let entry = store.build(&spec, 0.5).unwrap();
        assert_eq!(entry.benchmark, "compress");
        assert_eq!(entry.format_version, CORPUS_VERSION);
        assert_eq!(store.len(), 1);
        assert_eq!(store.find(&spec, 0.5), Some(&entry));
        assert!(store.find(&spec, 0.25).is_none());
        assert_eq!(store.find_by_ppm(&spec, 500_000), Some(&entry));
        assert!(store.find_by_ppm(&spec, 250_000).is_none());
        store.verify_all().unwrap();

        // Reopen from disk: the catalog persists byte-identically.
        let reopened = CorpusStore::open(&dir).unwrap();
        assert_eq!(reopened.entries(), store.entries());
        let decoded = reopened.open_reader(&entry).unwrap().read_trace().unwrap();
        assert_eq!(decoded, spec.generate_scaled(0.5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rebuild_replaces_rather_than_duplicates() {
        let dir = tmp_dir("rebuild");
        let mut store = CorpusStore::open(&dir).unwrap();
        let spec = tiny_spec();
        store.build(&spec, 0.5).unwrap();
        store.build(&spec, 0.5).unwrap();
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_mix_same_triple_is_a_different_entry() {
        // The latent-collision regression at the catalog level: two
        // specs sharing (name, seed, instructions) but with different
        // behaviour mixes must resolve to different entries.
        let dir = tmp_dir("mix");
        let mut store = CorpusStore::open(&dir).unwrap();
        let a = tiny_spec();
        let mut b = a.clone();
        b.noise = (b.noise + 0.3).min(1.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let entry_a = store.build(&a, 0.5).unwrap();
        let entry_b = store.build(&b, 0.5).unwrap();
        assert_eq!(store.len(), 2);
        assert_ne!(entry_a.file, entry_b.file);
        assert_eq!(store.find(&a, 0.5), Some(&entry_a));
        assert_eq!(store.find(&b, 0.5), Some(&entry_b));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_format_version_is_invisible_to_find() {
        let dir = tmp_dir("version");
        let mut store = CorpusStore::open(&dir).unwrap();
        let spec = tiny_spec();
        store.build(&spec, 0.5).unwrap();
        store.entries[0].format_version = CORPUS_VERSION + 1;
        assert!(store.find(&spec, 0.5).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metadata_pins_catch_a_swapped_file() {
        let dir = tmp_dir("swap");
        let mut store = CorpusStore::open(&dir).unwrap();
        let spec = tiny_spec();
        let mut other = tiny_spec();
        other.instructions = 20_000;
        let entry = store.build(&spec, 1.0).unwrap();
        let other_entry = store.build(&other, 1.0).unwrap();
        // Swap the files behind the catalog's back.
        fs::copy(dir.join(&other_entry.file), dir.join(&entry.file)).unwrap();
        match store.open_reader(&entry) {
            Err(StoreError::Metadata { .. }) => {}
            other => panic!("swapped file accepted: {:?}", other.err()),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_catalog_reports_line() {
        let dir = tmp_dir("malformed");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(CATALOG_FILE),
            format!("{CATALOG_HEADER}\nnot\tenough\tfields\n"),
        )
        .unwrap();
        match CorpusStore::open(&dir) {
            Err(StoreError::Catalog { line: 2, .. }) => {}
            other => panic!("malformed catalog accepted: {:?}", other.err()),
        }
        fs::write(dir.join(CATALOG_FILE), "wrong header\n").unwrap();
        assert!(matches!(
            CorpusStore::open(&dir),
            Err(StoreError::Catalog { line: 1, .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
