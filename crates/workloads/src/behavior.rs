//! Branch behaviour archetypes.
//!
//! Every static conditional branch in a synthetic program is assigned one
//! archetype. The archetypes span the behaviour axes that differentiate
//! the predictors in the paper's evaluation:
//!
//! * [`Behavior::Biased`] — mostly one direction; what the BIM component
//!   and the agree predictor exploit.
//! * [`Behavior::Loop`] — taken `n-1` of `n` times; local history captures
//!   the period, global history captures it only if it fits the register.
//! * [`Behavior::LocalPattern`] — a fixed repeating pattern, the classic
//!   two-level-local showcase.
//! * [`Behavior::GlobalCorrelated`] — outcome is a boolean function of
//!   recent *global* outcomes; the reason global-history predictors win.
//! * [`Behavior::Random`] — inherently unpredictable (data-dependent), the
//!   "hard branches" the paper's conclusion worries about.

use ev8_util::rng::Rng;

/// The behaviour archetype of one static conditional branch.
#[derive(Clone, Debug, PartialEq)]
pub enum Behavior {
    /// Taken with the given probability, independently each execution.
    Biased {
        /// Probability of taken in `[0, 1]`.
        taken_probability: f64,
    },
    /// A loop back-edge: taken `trip_count - 1` consecutive times, then
    /// not taken once.
    Loop {
        /// Loop trip count (≥ 1).
        trip_count: u32,
    },
    /// A fixed repeating taken/not-taken pattern.
    LocalPattern {
        /// The pattern, iterated cyclically (must be non-empty).
        pattern: Vec<bool>,
    },
    /// The outcome equals the XOR of selected recent global outcomes,
    /// flipped with probability `noise`.
    GlobalCorrelated {
        /// Offsets (in branches) into the recent global outcome history;
        /// offset 0 is the most recent conditional branch.
        offsets: Vec<u8>,
        /// Probability of flipping the correlated outcome.
        noise: f64,
    },
    /// The outcome equals the XOR of selected recent *path* bits (one bit
    /// per control-flow region entered), flipped with probability
    /// `noise`. Models the common real-program case where a branch
    /// depends on *how control arrived* rather than on specific prior
    /// outcomes — the correlation class that block-compressed history
    /// (lghist) captures especially compactly (§5.1 of the paper).
    PathCorrelated {
        /// Offsets into the recent path-bit history; offset 0 is the most
        /// recently entered region.
        offsets: Vec<u8>,
        /// Probability of flipping the correlated outcome.
        noise: f64,
    },
    /// A fair (or slightly biased) coin — models data-dependent branches.
    Random,
}

/// Per-branch dynamic state for an archetype (loop counters, pattern
/// positions).
#[derive(Clone, Debug, Default)]
pub struct BehaviorState {
    position: u32,
}

impl Behavior {
    /// Computes the next outcome for a branch with this archetype.
    ///
    /// * `state` — the branch's private state (loop position etc.),
    /// * `global_history` — recent global conditional outcomes, bit 0 most
    ///   recent,
    /// * `path_history` — recent path bits (one per entered control-flow
    ///   region), bit 0 most recent,
    /// * `rng` — randomness source (deterministic per-program seed).
    pub fn next_outcome<R: Rng + ?Sized>(
        &self,
        state: &mut BehaviorState,
        global_history: u64,
        path_history: u64,
        rng: &mut R,
    ) -> bool {
        match self {
            Behavior::Biased { taken_probability } => rng.gen_bool(*taken_probability),
            Behavior::Loop { trip_count } => {
                let taken = state.position + 1 < *trip_count;
                state.position = if taken { state.position + 1 } else { 0 };
                taken
            }
            Behavior::LocalPattern { pattern } => {
                let taken = pattern[state.position as usize % pattern.len()];
                state.position = state.position.wrapping_add(1);
                taken
            }
            Behavior::GlobalCorrelated { offsets, noise } => {
                let mut v = 0u64;
                for &off in offsets {
                    v ^= (global_history >> off) & 1;
                }
                let mut taken = v == 1;
                if *noise > 0.0 && rng.gen_bool(*noise) {
                    taken = !taken;
                }
                taken
            }
            Behavior::PathCorrelated { offsets, noise } => {
                let mut v = 0u64;
                for &off in offsets {
                    v ^= (path_history >> off) & 1;
                }
                let mut taken = v == 1;
                if *noise > 0.0 && rng.gen_bool(*noise) {
                    taken = !taken;
                }
                taken
            }
            Behavior::Random => rng.gen_bool(0.5),
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Behavior::Biased { .. } => "biased",
            Behavior::Loop { .. } => "loop",
            Behavior::LocalPattern { .. } => "pattern",
            Behavior::GlobalCorrelated { .. } => "correlated",
            Behavior::PathCorrelated { .. } => "path-correlated",
            Behavior::Random => "random",
        }
    }

    /// Validates the archetype parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Behavior::Biased { taken_probability } => {
                if !(0.0..=1.0).contains(taken_probability) {
                    return Err(format!(
                        "taken_probability {taken_probability} not in [0,1]"
                    ));
                }
            }
            Behavior::Loop { trip_count } => {
                if *trip_count == 0 {
                    return Err("loop trip_count must be >= 1".to_owned());
                }
            }
            Behavior::LocalPattern { pattern } => {
                if pattern.is_empty() {
                    return Err("local pattern must be non-empty".to_owned());
                }
            }
            Behavior::GlobalCorrelated { offsets, noise }
            | Behavior::PathCorrelated { offsets, noise } => {
                if offsets.is_empty() {
                    return Err("correlation offsets must be non-empty".to_owned());
                }
                if offsets.iter().any(|&o| o >= 64) {
                    return Err("correlation offsets must be < 64".to_owned());
                }
                if !(0.0..=1.0).contains(noise) {
                    return Err(format!("noise {noise} not in [0,1]"));
                }
            }
            Behavior::Random => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev8_util::rng::DefaultRng;

    fn rng() -> DefaultRng {
        DefaultRng::seed_from_u64(42)
    }

    #[test]
    fn biased_respects_probability() {
        let b = Behavior::Biased {
            taken_probability: 0.9,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let taken = (0..5000)
            .filter(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .count();
        let rate = taken as f64 / 5000.0;
        assert!((rate - 0.9).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn loop_period_is_exact() {
        let b = Behavior::Loop { trip_count: 4 };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..12)
            .map(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn trip_count_one_never_taken() {
        let b = Behavior::Loop { trip_count: 1 };
        let mut st = BehaviorState::default();
        let mut r = rng();
        assert!((0..5).all(|_| !b.next_outcome(&mut st, 0, 0, &mut r)));
    }

    #[test]
    fn local_pattern_repeats() {
        let b = Behavior::LocalPattern {
            pattern: vec![true, false, false],
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..6)
            .map(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .collect();
        assert_eq!(outcomes, vec![true, false, false, true, false, false]);
    }

    #[test]
    fn global_correlated_follows_history() {
        let b = Behavior::GlobalCorrelated {
            offsets: vec![0, 2],
            noise: 0.0,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        // history bits: b0=1, b2=0 -> XOR = 1 -> taken.
        assert!(b.next_outcome(&mut st, 0b001, 0, &mut r));
        // b0=1, b2=1 -> 0 -> not taken.
        assert!(!b.next_outcome(&mut st, 0b101, 0, &mut r));
    }

    #[test]
    fn global_correlated_noise_flips_sometimes() {
        let b = Behavior::GlobalCorrelated {
            offsets: vec![0],
            noise: 0.25,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let flips = (0..4000)
            .filter(|_| !b.next_outcome(&mut st, 0b1, 0, &mut r)) // expected taken
            .count();
        let rate = flips as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "flip rate {rate}");
    }

    #[test]
    fn path_correlated_follows_path_register() {
        let b = Behavior::PathCorrelated {
            offsets: vec![1],
            noise: 0.0,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        // Path bit 1 set -> taken; outcome history must be ignored.
        assert!(b.next_outcome(&mut st, 0, 0b10, &mut r));
        assert!(!b.next_outcome(&mut st, u64::MAX, 0b00, &mut r));
    }

    #[test]
    fn random_is_roughly_fair() {
        let b = Behavior::Random;
        let mut st = BehaviorState::default();
        let mut r = rng();
        let taken = (0..5000)
            .filter(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .count();
        let rate = taken as f64 / 5000.0;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(Behavior::Biased {
            taken_probability: 1.5
        }
        .validate()
        .is_err());
        assert!(Behavior::Loop { trip_count: 0 }.validate().is_err());
        assert!(Behavior::LocalPattern { pattern: vec![] }
            .validate()
            .is_err());
        assert!(Behavior::GlobalCorrelated {
            offsets: vec![],
            noise: 0.0
        }
        .validate()
        .is_err());
        assert!(Behavior::GlobalCorrelated {
            offsets: vec![64],
            noise: 0.0
        }
        .validate()
        .is_err());
        assert!(Behavior::GlobalCorrelated {
            offsets: vec![3],
            noise: 2.0
        }
        .validate()
        .is_err());
        assert!(Behavior::PathCorrelated {
            offsets: vec![],
            noise: 0.0
        }
        .validate()
        .is_err());
        assert!(Behavior::PathCorrelated {
            offsets: vec![2],
            noise: 0.01
        }
        .validate()
        .is_ok());
        assert!(Behavior::Random.validate().is_ok());
        assert!(Behavior::Loop { trip_count: 8 }.validate().is_ok());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Behavior::Biased {
                taken_probability: 0.5,
            }
            .label(),
            Behavior::Loop { trip_count: 2 }.label(),
            Behavior::LocalPattern {
                pattern: vec![true],
            }
            .label(),
            Behavior::GlobalCorrelated {
                offsets: vec![0],
                noise: 0.0,
            }
            .label(),
            Behavior::PathCorrelated {
                offsets: vec![0],
                noise: 0.0,
            }
            .label(),
            Behavior::Random.label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
