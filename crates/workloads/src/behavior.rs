//! Branch behaviour archetypes.
//!
//! Every static conditional branch in a synthetic program is assigned one
//! archetype. The archetypes span the behaviour axes that differentiate
//! the predictors in the paper's evaluation:
//!
//! * [`Behavior::Biased`] — mostly one direction; what the BIM component
//!   and the agree predictor exploit.
//! * [`Behavior::Loop`] — taken `n-1` of `n` times; local history captures
//!   the period, global history captures it only if it fits the register.
//! * [`Behavior::LocalPattern`] — a fixed repeating pattern, the classic
//!   two-level-local showcase.
//! * [`Behavior::GlobalCorrelated`] — outcome is a boolean function of
//!   recent *global* outcomes; the reason global-history predictors win.
//! * [`Behavior::Random`] — inherently unpredictable (data-dependent), the
//!   "hard branches" the paper's conclusion worries about.
//!
//! The **H2P archetypes** follow the Constantinou/Perais/Sazeides
//! taxonomy of hard-to-predict branches (see PAPERS.md): branches whose
//! outcomes are functions of program *data*, of *input entropy*, or of
//! *timing*, none of which is visible in branch history:
//!
//! * [`Behavior::DataDependent`] — outcome is a hash of a long-period
//!   iteration counter: deterministic, but structureless to any
//!   history-indexed table (the "wild branches" of the Bullseye paper).
//! * [`Behavior::InputEntropy`] — a strongly biased branch whose bias
//!   *direction* flips at input-driven random times; predictors must
//!   re-learn after every flip, so faster-adapting schemes lose less.
//! * [`Behavior::TimingJitter`] — a loop back-edge whose trip count is
//!   re-drawn per entry (timing/availability-dependent exit): the mean
//!   period is learnable, the exact exit iteration is not.

use ev8_util::rng::Rng;

/// The behaviour archetype of one static conditional branch.
#[derive(Clone, Debug, PartialEq)]
pub enum Behavior {
    /// Taken with the given probability, independently each execution.
    Biased {
        /// Probability of taken in `[0, 1]`.
        taken_probability: f64,
    },
    /// A loop back-edge: taken `trip_count - 1` consecutive times, then
    /// not taken once.
    Loop {
        /// Loop trip count (≥ 1).
        trip_count: u32,
    },
    /// A fixed repeating taken/not-taken pattern.
    LocalPattern {
        /// The pattern, iterated cyclically (must be non-empty).
        pattern: Vec<bool>,
    },
    /// The outcome equals the XOR of selected recent global outcomes,
    /// flipped with probability `noise`.
    GlobalCorrelated {
        /// Offsets (in branches) into the recent global outcome history;
        /// offset 0 is the most recent conditional branch.
        offsets: Vec<u8>,
        /// Probability of flipping the correlated outcome.
        noise: f64,
    },
    /// The outcome equals the XOR of selected recent *path* bits (one bit
    /// per control-flow region entered), flipped with probability
    /// `noise`. Models the common real-program case where a branch
    /// depends on *how control arrived* rather than on specific prior
    /// outcomes — the correlation class that block-compressed history
    /// (lghist) captures especially compactly (§5.1 of the paper).
    PathCorrelated {
        /// Offsets into the recent path-bit history; offset 0 is the most
        /// recently entered region.
        offsets: Vec<u8>,
        /// Probability of flipping the correlated outcome.
        noise: f64,
    },
    /// A fair (or slightly biased) coin — models data-dependent branches.
    Random,
    /// H2P: the outcome is a hash bit of a long-period iteration counter
    /// — a pure function of program data that carries no correlation
    /// with branch history. Deterministic per execution index, yet
    /// effectively unpredictable for any history-indexed scheme unless
    /// the period is short enough to memorize.
    DataDependent {
        /// Per-site hash salt (derived from the program seed).
        salt: u64,
        /// Counter period (≥ 1); the outcome sequence repeats after
        /// `period` executions. Long periods are unlearnable.
        period: u32,
    },
    /// H2P: a strongly biased branch whose bias *direction* is a hidden
    /// two-state Markov chain — the direction flips with `flip_rate`
    /// each execution (modeling input-entropy-driven phase changes).
    /// Within a phase the branch is `bias`-predictable; every flip
    /// forces relearning, so adaptation speed separates predictors.
    InputEntropy {
        /// Probability the hidden direction flips before an execution.
        flip_rate: f64,
        /// Probability the outcome follows the current direction
        /// (in `[0.5, 1]`).
        bias: f64,
    },
    /// H2P: a loop back-edge whose trip count is re-drawn uniformly from
    /// `base_trip ..= base_trip + jitter` at every loop entry — the
    /// timing-style non-predictable branch (spin loops, queue polls):
    /// the mean period is learnable, the exact exit is not.
    TimingJitter {
        /// Minimum trip count (≥ 1).
        base_trip: u32,
        /// Maximum extra iterations drawn per loop entry.
        jitter: u32,
    },
}

/// Per-branch dynamic state for an archetype (loop counters, pattern
/// positions, hidden phase bits).
#[derive(Clone, Debug, Default)]
pub struct BehaviorState {
    position: u32,
    /// Archetype-private auxiliary word: the [`Behavior::InputEntropy`]
    /// hidden direction (bit 0) and the [`Behavior::TimingJitter`]
    /// currently drawn trip count.
    aux: u32,
}

impl Behavior {
    /// Computes the next outcome for a branch with this archetype.
    ///
    /// * `state` — the branch's private state (loop position etc.),
    /// * `global_history` — recent global conditional outcomes, bit 0 most
    ///   recent,
    /// * `path_history` — recent path bits (one per entered control-flow
    ///   region), bit 0 most recent,
    /// * `rng` — randomness source (deterministic per-program seed).
    pub fn next_outcome<R: Rng + ?Sized>(
        &self,
        state: &mut BehaviorState,
        global_history: u64,
        path_history: u64,
        rng: &mut R,
    ) -> bool {
        match self {
            Behavior::Biased { taken_probability } => rng.gen_bool(*taken_probability),
            Behavior::Loop { trip_count } => {
                let taken = state.position + 1 < *trip_count;
                state.position = if taken { state.position + 1 } else { 0 };
                taken
            }
            Behavior::LocalPattern { pattern } => {
                let taken = pattern[state.position as usize % pattern.len()];
                state.position = state.position.wrapping_add(1);
                taken
            }
            Behavior::GlobalCorrelated { offsets, noise } => {
                let mut v = 0u64;
                for &off in offsets {
                    v ^= (global_history >> off) & 1;
                }
                let mut taken = v == 1;
                if *noise > 0.0 && rng.gen_bool(*noise) {
                    taken = !taken;
                }
                taken
            }
            Behavior::PathCorrelated { offsets, noise } => {
                let mut v = 0u64;
                for &off in offsets {
                    v ^= (path_history >> off) & 1;
                }
                let mut taken = v == 1;
                if *noise > 0.0 && rng.gen_bool(*noise) {
                    taken = !taken;
                }
                taken
            }
            Behavior::Random => rng.gen_bool(0.5),
            Behavior::DataDependent { salt, period } => {
                let taken = ev8_util::rng::mix(*salt ^ state.position as u64) & 1 == 1;
                state.position = (state.position + 1) % *period;
                taken
            }
            Behavior::InputEntropy { flip_rate, bias } => {
                if rng.gen_bool(*flip_rate) {
                    state.aux ^= 1;
                }
                let direction = state.aux & 1 == 1;
                if rng.gen_bool(*bias) {
                    direction
                } else {
                    !direction
                }
            }
            Behavior::TimingJitter { base_trip, jitter } => {
                if state.position == 0 {
                    // One uniform draw in 0..=jitter (gen_range needs a
                    // sized Rng, which this dyn-friendly signature lacks).
                    let span = f64::from(*jitter) + 1.0;
                    state.aux = base_trip + (rng.gen_f64() * span) as u32;
                }
                let taken = state.position + 1 < state.aux;
                state.position = if taken { state.position + 1 } else { 0 };
                taken
            }
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Behavior::Biased { .. } => "biased",
            Behavior::Loop { .. } => "loop",
            Behavior::LocalPattern { .. } => "pattern",
            Behavior::GlobalCorrelated { .. } => "correlated",
            Behavior::PathCorrelated { .. } => "path-correlated",
            Behavior::Random => "random",
            Behavior::DataDependent { .. } => "data-dependent",
            Behavior::InputEntropy { .. } => "input-entropy",
            Behavior::TimingJitter { .. } => "timing-jitter",
        }
    }

    /// True for the hard-to-predict archetype classes of the
    /// Constantinou/Perais/Sazeides taxonomy: the branches whose outcome
    /// is a function of data values, input entropy or timing rather than
    /// of anything branch history encodes. [`Behavior::Random`] belongs
    /// here too (it models irreducible data dependence).
    pub fn is_h2p(&self) -> bool {
        matches!(
            self,
            Behavior::Random
                | Behavior::DataDependent { .. }
                | Behavior::InputEntropy { .. }
                | Behavior::TimingJitter { .. }
        )
    }

    /// [`Behavior::is_h2p`] keyed by [`Behavior::label`], for classifying
    /// report rows without holding a `Behavior` value.
    pub fn label_is_h2p(label: &str) -> bool {
        matches!(
            label,
            "random" | "data-dependent" | "input-entropy" | "timing-jitter"
        )
    }

    /// Validates the archetype parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Behavior::Biased { taken_probability } => {
                if !(0.0..=1.0).contains(taken_probability) {
                    return Err(format!(
                        "taken_probability {taken_probability} not in [0,1]"
                    ));
                }
            }
            Behavior::Loop { trip_count } => {
                if *trip_count == 0 {
                    return Err("loop trip_count must be >= 1".to_owned());
                }
            }
            Behavior::LocalPattern { pattern } => {
                if pattern.is_empty() {
                    return Err("local pattern must be non-empty".to_owned());
                }
            }
            Behavior::GlobalCorrelated { offsets, noise }
            | Behavior::PathCorrelated { offsets, noise } => {
                if offsets.is_empty() {
                    return Err("correlation offsets must be non-empty".to_owned());
                }
                if offsets.iter().any(|&o| o >= 64) {
                    return Err("correlation offsets must be < 64".to_owned());
                }
                if !(0.0..=1.0).contains(noise) {
                    return Err(format!("noise {noise} not in [0,1]"));
                }
            }
            Behavior::Random => {}
            Behavior::DataDependent { period, .. } => {
                if *period == 0 {
                    return Err("data-dependent period must be >= 1".to_owned());
                }
            }
            Behavior::InputEntropy { flip_rate, bias } => {
                if !(0.0..=1.0).contains(flip_rate) {
                    return Err(format!("flip_rate {flip_rate} not in [0,1]"));
                }
                if !(0.5..=1.0).contains(bias) {
                    return Err(format!("bias {bias} not in [0.5,1]"));
                }
            }
            Behavior::TimingJitter { base_trip, .. } => {
                if *base_trip == 0 {
                    return Err("timing-jitter base_trip must be >= 1".to_owned());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev8_util::rng::DefaultRng;

    fn rng() -> DefaultRng {
        DefaultRng::seed_from_u64(42)
    }

    #[test]
    fn biased_respects_probability() {
        let b = Behavior::Biased {
            taken_probability: 0.9,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let taken = (0..5000)
            .filter(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .count();
        let rate = taken as f64 / 5000.0;
        assert!((rate - 0.9).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn loop_period_is_exact() {
        let b = Behavior::Loop { trip_count: 4 };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..12)
            .map(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .collect();
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn trip_count_one_never_taken() {
        let b = Behavior::Loop { trip_count: 1 };
        let mut st = BehaviorState::default();
        let mut r = rng();
        assert!((0..5).all(|_| !b.next_outcome(&mut st, 0, 0, &mut r)));
    }

    #[test]
    fn local_pattern_repeats() {
        let b = Behavior::LocalPattern {
            pattern: vec![true, false, false],
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..6)
            .map(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .collect();
        assert_eq!(outcomes, vec![true, false, false, true, false, false]);
    }

    #[test]
    fn global_correlated_follows_history() {
        let b = Behavior::GlobalCorrelated {
            offsets: vec![0, 2],
            noise: 0.0,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        // history bits: b0=1, b2=0 -> XOR = 1 -> taken.
        assert!(b.next_outcome(&mut st, 0b001, 0, &mut r));
        // b0=1, b2=1 -> 0 -> not taken.
        assert!(!b.next_outcome(&mut st, 0b101, 0, &mut r));
    }

    #[test]
    fn global_correlated_noise_flips_sometimes() {
        let b = Behavior::GlobalCorrelated {
            offsets: vec![0],
            noise: 0.25,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let flips = (0..4000)
            .filter(|_| !b.next_outcome(&mut st, 0b1, 0, &mut r)) // expected taken
            .count();
        let rate = flips as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "flip rate {rate}");
    }

    #[test]
    fn path_correlated_follows_path_register() {
        let b = Behavior::PathCorrelated {
            offsets: vec![1],
            noise: 0.0,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        // Path bit 1 set -> taken; outcome history must be ignored.
        assert!(b.next_outcome(&mut st, 0, 0b10, &mut r));
        assert!(!b.next_outcome(&mut st, u64::MAX, 0b00, &mut r));
    }

    #[test]
    fn random_is_roughly_fair() {
        let b = Behavior::Random;
        let mut st = BehaviorState::default();
        let mut r = rng();
        let taken = (0..5000)
            .filter(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .count();
        let rate = taken as f64 / 5000.0;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn data_dependent_is_deterministic_and_balanced() {
        let b = Behavior::DataDependent {
            salt: 0xDEAD_BEEF,
            period: 1 << 20,
        };
        // Deterministic: the sequence is a pure function of the counter.
        let run = |n: usize| -> Vec<bool> {
            let mut st = BehaviorState::default();
            let mut r = rng();
            (0..n)
                .map(|_| b.next_outcome(&mut st, 0, 0, &mut r))
                .collect()
        };
        assert_eq!(run(2000), run(2000));
        // Balanced: a hash bit is a fair coin in aggregate.
        let taken = run(5000).iter().filter(|&&t| t).count();
        let rate = taken as f64 / 5000.0;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
        // No rng draws consumed: history-independent and data-driven.
        let mut st = BehaviorState::default();
        let mut r1 = rng();
        let mut r2 = rng();
        b.next_outcome(&mut st, 0, 0, &mut r1);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn data_dependent_repeats_at_its_period() {
        let b = Behavior::DataDependent { salt: 7, period: 8 };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let seq: Vec<bool> = (0..24)
            .map(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .collect();
        assert_eq!(seq[..8], seq[8..16]);
        assert_eq!(seq[..8], seq[16..24]);
    }

    #[test]
    fn input_entropy_is_biased_within_phases() {
        // With no flips the branch is simply biased toward the hidden
        // direction (initially not-taken).
        let b = Behavior::InputEntropy {
            flip_rate: 0.0,
            bias: 0.95,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let taken = (0..4000)
            .filter(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .count();
        let rate = taken as f64 / 4000.0;
        assert!((rate - 0.05).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn input_entropy_flips_direction_over_time() {
        let b = Behavior::InputEntropy {
            flip_rate: 0.01,
            bias: 1.0,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let outcomes: Vec<bool> = (0..8000)
            .map(|_| b.next_outcome(&mut st, 0, 0, &mut r))
            .collect();
        // With deterministic within-phase outcomes, every observed change
        // of value is a direction flip; expect roughly 8000 * 0.01.
        let flips = outcomes.windows(2).filter(|w| w[0] != w[1]).count();
        assert!((20..=200).contains(&flips), "{flips} flips");
    }

    #[test]
    fn timing_jitter_exits_within_the_drawn_band() {
        let b = Behavior::TimingJitter {
            base_trip: 4,
            jitter: 3,
        };
        let mut st = BehaviorState::default();
        let mut r = rng();
        let mut trip = 0u32;
        let mut trips = Vec::new();
        for _ in 0..4000 {
            if b.next_outcome(&mut st, 0, 0, &mut r) {
                trip += 1;
            } else {
                trips.push(trip + 1);
                trip = 0;
            }
        }
        assert!(trips.iter().all(|&t| (4..=7).contains(&t)), "{trips:?}");
        // The jitter must actually vary the exit point.
        let distinct: std::collections::HashSet<u32> = trips.iter().copied().collect();
        assert!(distinct.len() >= 3, "trip counts {distinct:?}");
    }

    #[test]
    fn h2p_classification_matches_taxonomy() {
        assert!(Behavior::Random.is_h2p());
        assert!(Behavior::DataDependent { salt: 1, period: 2 }.is_h2p());
        assert!(Behavior::InputEntropy {
            flip_rate: 0.1,
            bias: 0.9
        }
        .is_h2p());
        assert!(Behavior::TimingJitter {
            base_trip: 2,
            jitter: 1
        }
        .is_h2p());
        assert!(!Behavior::Loop { trip_count: 4 }.is_h2p());
        assert!(!Behavior::Biased {
            taken_probability: 0.9
        }
        .is_h2p());
        for b in [
            Behavior::Random,
            Behavior::DataDependent { salt: 1, period: 2 },
            Behavior::Loop { trip_count: 4 },
        ] {
            assert_eq!(Behavior::label_is_h2p(b.label()), b.is_h2p());
        }
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(Behavior::Biased {
            taken_probability: 1.5
        }
        .validate()
        .is_err());
        assert!(Behavior::Loop { trip_count: 0 }.validate().is_err());
        assert!(Behavior::LocalPattern { pattern: vec![] }
            .validate()
            .is_err());
        assert!(Behavior::GlobalCorrelated {
            offsets: vec![],
            noise: 0.0
        }
        .validate()
        .is_err());
        assert!(Behavior::GlobalCorrelated {
            offsets: vec![64],
            noise: 0.0
        }
        .validate()
        .is_err());
        assert!(Behavior::GlobalCorrelated {
            offsets: vec![3],
            noise: 2.0
        }
        .validate()
        .is_err());
        assert!(Behavior::PathCorrelated {
            offsets: vec![],
            noise: 0.0
        }
        .validate()
        .is_err());
        assert!(Behavior::PathCorrelated {
            offsets: vec![2],
            noise: 0.01
        }
        .validate()
        .is_ok());
        assert!(Behavior::Random.validate().is_ok());
        assert!(Behavior::Loop { trip_count: 8 }.validate().is_ok());
        assert!(Behavior::DataDependent { salt: 1, period: 0 }
            .validate()
            .is_err());
        assert!(Behavior::DataDependent { salt: 1, period: 9 }
            .validate()
            .is_ok());
        assert!(Behavior::InputEntropy {
            flip_rate: 1.5,
            bias: 0.9
        }
        .validate()
        .is_err());
        assert!(Behavior::InputEntropy {
            flip_rate: 0.1,
            bias: 0.3
        }
        .validate()
        .is_err());
        assert!(Behavior::InputEntropy {
            flip_rate: 0.02,
            bias: 0.92
        }
        .validate()
        .is_ok());
        assert!(Behavior::TimingJitter {
            base_trip: 0,
            jitter: 4
        }
        .validate()
        .is_err());
        assert!(Behavior::TimingJitter {
            base_trip: 3,
            jitter: 4
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Behavior::Biased {
                taken_probability: 0.5,
            }
            .label(),
            Behavior::Loop { trip_count: 2 }.label(),
            Behavior::LocalPattern {
                pattern: vec![true],
            }
            .label(),
            Behavior::GlobalCorrelated {
                offsets: vec![0],
                noise: 0.0,
            }
            .label(),
            Behavior::PathCorrelated {
                offsets: vec![0],
                noise: 0.0,
            }
            .label(),
            Behavior::Random.label(),
            Behavior::DataDependent { salt: 1, period: 4 }.label(),
            Behavior::InputEntropy {
                flip_rate: 0.01,
                bias: 0.9,
            }
            .label(),
            Behavior::TimingJitter {
                base_trip: 4,
                jitter: 2,
            }
            .label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
