//! Hard-to-predict (H2P) workload analogues.
//!
//! The Constantinou/Perais/Sazeides taxonomy (see PAPERS.md) identifies
//! three recurring sources of systematically hard branches in real
//! programs: *data-dependent* branches keyed on loaded values,
//! *input-entropy* branches that follow external input streams, and
//! *timing-style* branches whose trip counts jitter with the
//! environment. This module provides one calibrated [`ProgramSpec`] per
//! archetype, each concentrating its class via
//! [`crate::program::H2pMix`] while keeping a realistic background of
//! ordinary biased/loop/correlated branches around it — the workloads
//! the `h2p` attribution experiment ranks and classifies against.
//!
//! Ground truth is available: [`crate::program::site_labels`] rebuilds
//! the static program deterministically, so every PC in the generated
//! trace can be mapped back to the archetype that drives it
//! ([`site_classes`]).

use std::collections::HashMap;
use std::sync::Arc;

use ev8_trace::{FlatTrace, Trace};

use crate::program::{site_labels, BehaviorMix, H2pMix, ProgramSpec};

/// The H2P workload names, in taxonomy order.
pub const NAMES: [&str; 3] = ["datadep", "entropy", "timing"];

/// The calibrated spec for one H2P workload, or `None` for an unknown
/// name.
///
/// Each spec targets the paper's 100M-instruction trace length (use
/// [`ProgramSpec::generate_scaled`] for shorter runs) and devotes a
/// large minority of its dynamic stream to one H2P archetype, with the
/// remainder an ordinary predictable background — so per-PC attribution
/// can separate the H2P tail from the well-behaved bulk.
pub fn workload(name: &str) -> Option<ProgramSpec> {
    let (h2p, statics, density, hotness_skew, noise, seed) = match name {
        // Pointer/hash-value driven control: outcomes are a pure
        // function of opaque data, unlearnable at any history length.
        "datadep" => (
            H2pMix {
                data_dependent: 0.35,
                input_entropy: 0.0,
                timing: 0.0,
            },
            700,
            130.0,
            0.85,
            0.30,
            0xD47A,
        ),
        // Parser/decompressor-style dispatch: direction follows a
        // hidden input stream that drifts slowly but is locally biased.
        "entropy" => (
            H2pMix {
                data_dependent: 0.0,
                input_entropy: 0.35,
                timing: 0.0,
            },
            450,
            140.0,
            0.90,
            0.20,
            0xE27B,
        ),
        // Spin/poll/retry loops: trip counts redrawn per visit, so exit
        // branches mispredict once per unpredictable-length burst.
        "timing" => (
            H2pMix {
                data_dependent: 0.0,
                input_entropy: 0.0,
                timing: 0.35,
            },
            350,
            120.0,
            0.80,
            0.25,
            0x717E,
        ),
        _ => return None,
    };
    Some(ProgramSpec {
        name: name.to_owned(),
        seed,
        static_branches: statics,
        instructions: 100_000_000,
        branch_density: density,
        mix: BehaviorMix {
            biased: 0.35,
            loops: 0.15,
            patterns: 0.05,
            correlated: 0.08,
            random: 0.02,
            h2p,
        },
        hotness_skew,
        call_fraction: 0.10,
        noise,
        chain_length_bias: 0.55,
    })
}

/// All three H2P specs, in taxonomy order.
pub fn suite() -> Vec<ProgramSpec> {
    NAMES
        .iter()
        .map(|n| workload(n).expect("all suite names are known"))
        .collect()
}

/// The trace for `workload(name)` scaled by `scale`, served from the
/// process-wide [`crate::cache`] like [`crate::spec95::cached`].
///
/// Returns `None` for an unknown workload name.
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn cached(name: &str, scale: f64) -> Option<Arc<Trace>> {
    Some(crate::cache::global().get_scaled(&workload(name)?, scale))
}

/// The packed [`FlatTrace`] view of `workload(name)` scaled by `scale`,
/// served from the process-wide [`crate::cache`].
///
/// Returns `None` for an unknown workload name.
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn cached_flat(name: &str, scale: f64) -> Option<Arc<FlatTrace>> {
    Some(crate::cache::global().get_flat_scaled(&workload(name)?, scale))
}

/// Ground-truth archetype label per static branch PC of `spec`'s
/// program, as a lookup map.
///
/// Labels are [`crate::behavior::Behavior::label`] strings
/// (`"data-dependent"`, `"loop"`, …); use
/// [`crate::behavior::Behavior::label_is_h2p`] to collapse them into
/// the H2P / predictable dichotomy.
pub fn site_classes(spec: &ProgramSpec) -> HashMap<u64, &'static str> {
    site_labels(spec).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;
    use ev8_trace::TraceStats;

    #[test]
    fn all_names_resolve() {
        for n in NAMES {
            assert!(workload(n).is_some(), "missing spec for {n}");
        }
        assert!(workload("doom").is_none());
        assert_eq!(suite().len(), 3);
        let seeds: std::collections::HashSet<u64> = suite().iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 3);
    }

    #[test]
    fn each_workload_concentrates_its_own_archetype() {
        let expect = [
            ("datadep", "data-dependent"),
            ("entropy", "input-entropy"),
            ("timing", "timing-jitter"),
        ];
        for (name, label) in expect {
            let spec = workload(name).unwrap();
            let classes = site_classes(&spec);
            let own = classes.values().filter(|l| **l == label).count();
            let other_h2p = classes
                .values()
                .filter(|l| **l != label && **l != "random" && Behavior::label_is_h2p(l))
                .count();
            assert!(
                own * 5 >= classes.len(),
                "{name}: only {own} of {} sites are {label}",
                classes.len()
            );
            assert_eq!(other_h2p, 0, "{name}: stray H2P archetypes present");
        }
    }

    #[test]
    fn site_classes_cover_the_generated_trace() {
        for n in NAMES {
            let spec = workload(n).unwrap();
            let classes = site_classes(&spec);
            let trace = spec.generate_scaled(0.002);
            let mut missing = 0usize;
            for r in trace.records() {
                if r.kind.is_conditional() && !classes.contains_key(&r.pc.as_u64()) {
                    missing += 1;
                }
            }
            assert_eq!(missing, 0, "{n}: trace PCs missing from site_classes");
        }
    }

    #[test]
    fn h2p_work_is_a_large_dynamic_fraction() {
        for n in NAMES {
            let spec = workload(n).unwrap();
            let classes = site_classes(&spec);
            let trace = spec.generate_scaled(0.005);
            let (mut h2p_dyn, mut total) = (0u64, 0u64);
            for r in trace.records() {
                if r.kind.is_conditional() {
                    total += 1;
                    if Behavior::label_is_h2p(classes[&r.pc.as_u64()]) {
                        h2p_dyn += 1;
                    }
                }
            }
            let frac = h2p_dyn as f64 / total as f64;
            assert!(
                (0.10..=0.80).contains(&frac),
                "{n}: H2P dynamic fraction {frac:.3} out of band"
            );
        }
    }

    #[test]
    fn densities_and_footprints_are_sane() {
        for n in NAMES {
            let spec = workload(n).unwrap();
            let trace = spec.generate_scaled(0.005);
            let stats = TraceStats::from_trace(&trace);
            let err = (stats.branch_density() - spec.branch_density).abs() / spec.branch_density;
            assert!(
                err < 0.35,
                "{n}: density {} off target",
                stats.branch_density()
            );
            assert!(stats.static_conditional as usize <= spec.static_branches);
        }
    }

    #[test]
    fn fingerprints_differ_from_h2p_free_twins() {
        for n in NAMES {
            let spec = workload(n).unwrap();
            let mut twin = spec.clone();
            twin.mix.h2p = H2pMix::NONE;
            assert_ne!(spec.fingerprint(), twin.fingerprint(), "{n}");
        }
    }
}
