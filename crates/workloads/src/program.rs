//! Synthetic program construction and the dynamic walk that produces a
//! branch trace.
//!
//! A [`ProgramSpec`] is compiled (deterministically, from its seed) into a
//! static *program*: a population of conditional branch sites grouped into
//! **chains** (straight-line code runs of 1-4 branches, the analogue of
//! extended basic blocks), laid out contiguously in a synthetic code
//! region. Each chain ends in a *suffix event*: plain fallthrough into the
//! next chain, an unconditional jump, a call (pushing a return address) or
//! a return. Loop chains end in a back-edge branch targeting their own
//! entry.
//!
//! The dynamic walk then follows actual control flow: taken branches jump
//! to their (Zipf-distributed) target chains, not-taken branches fall
//! through the chain. The resulting trace is **coherent** — every
//! instruction between two records occupies consecutive addresses — which
//! the EV8 front-end model (`ev8-core`) relies on to form fetch blocks,
//! and which makes Table 3's "branches per lghist bit" measurement
//! meaningful.

use ev8_util::rng::{DefaultRng, Rng};

use ev8_trace::{BranchKind, BranchRecord, Pc, Trace, TraceBuilder};

use crate::behavior::{Behavior, BehaviorState};
use crate::zipf::Zipf;

/// Relative weights of the hard-to-predict archetype classes
/// (Constantinou/Perais/Sazeides taxonomy) within a [`BehaviorMix`].
///
/// Kept as a separate extension block so the eight calibrated SPECINT95
/// specs — none of which uses these archetypes — read and fingerprint
/// exactly as they did before the H2P workloads existed (see
/// [`ProgramSpec::fingerprint`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct H2pMix {
    /// Hash-of-data branches ([`Behavior::DataDependent`]).
    pub data_dependent: f64,
    /// Entropy-driven bias flips ([`Behavior::InputEntropy`]).
    pub input_entropy: f64,
    /// Jittered loop exits ([`Behavior::TimingJitter`]).
    pub timing: f64,
}

impl H2pMix {
    /// No H2P archetypes at all — the classic mix.
    pub const NONE: H2pMix = H2pMix {
        data_dependent: 0.0,
        input_entropy: 0.0,
        timing: 0.0,
    };

    /// Sum of the H2P weights.
    pub fn total(&self) -> f64 {
        self.data_dependent + self.input_entropy + self.timing
    }
}

/// Relative weights of the behaviour archetypes in a program.
///
/// The weights need not sum to 1; they are normalized when sampling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BehaviorMix {
    /// Strongly biased branches (error checks, guards).
    pub biased: f64,
    /// Loop back-edges.
    pub loops: f64,
    /// Fixed repeating local patterns.
    pub patterns: f64,
    /// Branches correlated with recent global outcomes.
    pub correlated: f64,
    /// Data-dependent, inherently unpredictable branches.
    pub random: f64,
    /// Hard-to-predict archetype extension ([`H2pMix::NONE`] for the
    /// classic workloads).
    pub h2p: H2pMix,
}

impl BehaviorMix {
    /// A generic mix resembling integer codes: mostly biased branches,
    /// some loops and correlation, a little noise.
    pub const fn default_integer() -> Self {
        BehaviorMix {
            biased: 0.45,
            loops: 0.20,
            patterns: 0.10,
            correlated: 0.20,
            random: 0.05,
            h2p: H2pMix::NONE,
        }
    }

    /// Samples a concrete archetype (with randomized parameters).
    ///
    /// `noise` in `[0, 1]` scales the irreducible unpredictability: the
    /// flip probability of biased branches, the noise on correlated
    /// branches, and the share of purely random branches. Benchmarks like
    /// `vortex` (very predictable) use small values; `go` (hard) uses
    /// values near 1.
    fn sample(&self, rng: &mut DefaultRng, noise: f64) -> Behavior {
        let noise = noise.clamp(0.0, 1.0);
        // The random-archetype share scales with the noise level; the
        // remainder falls back to biased branches.
        let random_w = self.random * noise;
        let biased_w = self.biased + self.random - random_w;
        // The H2P weights join the total unscaled (adding their 0.0 for
        // classic mixes is exact, so those mixes draw the same stream as
        // before the extension existed).
        let t = biased_w
            + self.loops
            + self.patterns
            + self.correlated
            + self.h2p.data_dependent
            + self.h2p.input_entropy
            + self.h2p.timing
            + random_w;
        assert!(t > 0.0, "behavior mix must have positive total weight");
        let mut u = rng.gen_f64() * t;
        u -= biased_w;
        if u < 0.0 {
            // Bimodal bias: strongly taken or strongly not-taken. Real
            // integer-code guard branches are very strongly biased
            // (mostly > 95%), which is what lets bimodal components and
            // partial update shine.
            let flip = rng.gen_range(0.0005..(0.0015 + 0.06 * noise));
            let p = if rng.gen_bool(0.5) { 1.0 - flip } else { flip };
            return Behavior::Biased {
                taken_probability: p,
            };
        }
        u -= self.loops;
        if u < 0.0 {
            // Log-uniform trip counts between 2 and 64.
            let exp = rng.gen_range(1.0f64..6.0);
            return Behavior::Loop {
                trip_count: 2f64.powf(exp).round() as u32,
            };
        }
        u -= self.patterns;
        if u < 0.0 {
            let len = rng.gen_range(2..=8);
            let pattern: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
            return Behavior::LocalPattern { pattern };
        }
        u -= self.correlated;
        if u < 0.0 {
            let n = rng.gen_range(1..=3);
            let corr_noise = rng.gen_range(0.0..(0.001 + 0.04 * noise));
            // Part of the correlated population depends on the recent
            // *path* (how control arrived) rather than on raw prior
            // outcomes — the correlation class block-compressed history
            // encodes compactly (§5.1). Path offsets are in chain
            // transitions (several branches each), so they stay short to
            // remain within history reach; offset 0 would be the site's
            // own chain (a constant) and is excluded.
            return if rng.gen_bool(0.3) {
                let offsets: Vec<u8> = (0..n).map(|_| rng.gen_range(1..=3)).collect();
                Behavior::PathCorrelated {
                    offsets,
                    noise: corr_noise,
                }
            } else {
                let offsets: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=14)).collect();
                Behavior::GlobalCorrelated {
                    offsets,
                    noise: corr_noise,
                }
            };
        }
        u -= self.h2p.data_dependent;
        if u < 0.0 {
            // A fresh salt per site; log-uniform periods 2^10..2^20, far
            // past what any history register or tag can memorize.
            let salt = rng.next_u64();
            let exp = rng.gen_range(10.0f64..20.0);
            return Behavior::DataDependent {
                salt,
                period: 2f64.powf(exp).round() as u32,
            };
        }
        u -= self.h2p.input_entropy;
        if u < 0.0 {
            // Flip rates log-uniform in ~5e-4..2e-2 (phases of tens to
            // thousands of executions) with only a moderate within-phase
            // bias: every flip forces relearning and the floor stays
            // high, so these sites mispredict at a large multiple of an
            // ordinary biased branch.
            let flip_rate = 10f64.powf(rng.gen_range(-3.3f64..-1.7));
            let bias = rng.gen_range(0.72..0.90);
            return Behavior::InputEntropy { flip_rate, bias };
        }
        u -= self.h2p.timing;
        if u < 0.0 {
            // Short-to-medium loops whose exit jitters by about as much
            // as the base trip count.
            let base_trip = 2f64.powf(rng.gen_range(1.0f64..4.5)).round() as u32;
            let jitter = rng.gen_range(1..=base_trip.max(2));
            return Behavior::TimingJitter { base_trip, jitter };
        }
        Behavior::Random
    }
}

impl Default for BehaviorMix {
    fn default() -> Self {
        Self::default_integer()
    }
}

/// Specification of a synthetic benchmark program.
///
/// # Example
///
/// ```
/// use ev8_workloads::{BehaviorMix, ProgramSpec};
///
/// let spec = ProgramSpec {
///     name: "demo".into(),
///     seed: 1,
///     static_branches: 64,
///     instructions: 100_000,
///     branch_density: 120.0,
///     mix: BehaviorMix::default_integer(),
///     hotness_skew: 0.8,
///     call_fraction: 0.1,
///     noise: 0.5,
///     chain_length_bias: 0.6,
/// };
/// let trace = spec.generate();
/// assert!(trace.instruction_count() >= 100_000);
/// ```
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// Benchmark name (becomes the trace name).
    pub name: String,
    /// RNG seed; the same spec always generates the same trace.
    pub seed: u64,
    /// Number of static conditional branch sites.
    pub static_branches: usize,
    /// Target dynamic instruction count (the walk stops at the first
    /// record boundary at or beyond it).
    pub instructions: u64,
    /// Conditional branches per 1000 instructions (Table 2's density).
    pub branch_density: f64,
    /// Behaviour archetype mix.
    pub mix: BehaviorMix,
    /// Zipf exponent for chain hotness (0 = uniform, ~1 = realistic).
    pub hotness_skew: f64,
    /// Fraction of chains ending in a call (matched by returns).
    pub call_fraction: f64,
    /// Irreducible unpredictability in `[0, 1]` (see
    /// [`BehaviorMix`]'s sampling): ~0.15 for very predictable codes
    /// (vortex-like), ~1.0 for hard ones (go-like).
    pub noise: f64,
    /// Branch clustering in `[0, 1]`: how long the straight-line chains
    /// of conditional branches are. Longer chains put several branches in
    /// one aligned fetch block, raising Table 3's lghist compression
    /// ratio (go ≈ 1.12 wants ~0.2; vortex ≈ 1.59 wants ~0.95).
    pub chain_length_bias: f64,
}

impl ProgramSpec {
    /// Generates the trace for this spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (`static_branches == 0`,
    /// non-positive density, or an empty behaviour mix).
    pub fn generate(&self) -> Trace {
        generate(self)
    }

    /// Generates a trace scaled to `scale × instructions` (e.g. `0.1` for
    /// a fast test run of a 100M-instruction spec).
    pub fn generate_scaled(&self, scale: f64) -> Trace {
        assert!(scale > 0.0, "scale must be positive");
        let mut spec = self.clone();
        spec.instructions = ((self.instructions as f64) * scale).max(1.0) as u64;
        generate(&spec)
    }

    /// A stable 64-bit fingerprint of the *generator identity*: every
    /// spec field (floats by bit pattern) plus [`GENERATOR_VERSION`].
    ///
    /// Two specs generate the same trace only if their fingerprints
    /// match, so this is the key component that prevents a trace cached
    /// or persisted under one spec from shadowing a different spec that
    /// happens to share its `(name, seed, instructions)` triple — the
    /// latent collision the corpus tier exposed. The trace cache and the
    /// corpus catalog both key on it.
    ///
    /// The hash is FNV-1a over a fixed little-endian field serialization;
    /// it depends only on the spec's values, never on pointer identity or
    /// process state, so fingerprints are comparable across runs and
    /// across machines.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(&GENERATOR_VERSION.to_le_bytes());
        eat(self.name.as_bytes());
        eat(&[0]); // terminator so the name cannot bleed into the seed
        eat(&self.seed.to_le_bytes());
        eat(&(self.static_branches as u64).to_le_bytes());
        eat(&self.instructions.to_le_bytes());
        eat(&self.branch_density.to_bits().to_le_bytes());
        eat(&self.mix.biased.to_bits().to_le_bytes());
        eat(&self.mix.loops.to_bits().to_le_bytes());
        eat(&self.mix.patterns.to_bits().to_le_bytes());
        eat(&self.mix.correlated.to_bits().to_le_bytes());
        eat(&self.mix.random.to_bits().to_le_bytes());
        // The H2P extension is hashed only when present, so every spec
        // predating it (all of spec95) keeps its exact fingerprint —
        // cache keys, corpus catalog rows and golden fixtures stay
        // valid. The tag byte keeps an extended spec from colliding with
        // a classic one that happens to share a byte prefix.
        if self.mix.h2p != crate::program::H2pMix::NONE {
            eat(&[1]);
            eat(&self.mix.h2p.data_dependent.to_bits().to_le_bytes());
            eat(&self.mix.h2p.input_entropy.to_bits().to_le_bytes());
            eat(&self.mix.h2p.timing.to_bits().to_le_bytes());
        }
        eat(&self.hotness_skew.to_bits().to_le_bytes());
        eat(&self.call_fraction.to_bits().to_le_bytes());
        eat(&self.noise.to_bits().to_le_bytes());
        eat(&self.chain_length_bias.to_bits().to_le_bytes());
        h
    }
}

/// Version of the trace-generation *algorithm*. Bump this whenever a
/// change to the generator (behaviour sampling, layout, walk order)
/// alters the bytes a given [`ProgramSpec`] produces: fingerprints then
/// change, invalidating stale cache entries and corpus catalog rows
/// instead of letting them shadow regenerated traces.
pub const GENERATOR_VERSION: u32 = 1;

/// One static conditional branch site.
#[derive(Clone, Debug)]
struct Site {
    pc: Pc,
    target: Pc,
    gap_before: u32,
    behavior: Behavior,
    state: BehaviorState,
}

/// What happens when control falls off the end of a chain.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Suffix {
    /// Run straight into the next chain in layout order.
    Fallthrough,
    /// Unconditional jump to another chain.
    Jump { target_chain: usize },
    /// Call another chain (push the return address).
    Call { callee_chain: usize },
    /// Return to the most recent pushed address.
    Return,
}

/// A chain: consecutive sites plus a suffix event.
#[derive(Clone, Debug)]
struct Chain {
    first_site: usize,
    len: usize,
    entry: Pc,
    /// PC of the suffix instruction (if the suffix emits a record).
    suffix_pc: Pc,
    suffix: Suffix,
}

/// The compiled static program.
#[derive(Debug)]
struct Program {
    sites: Vec<Site>,
    chains: Vec<Chain>,
}

const CODE_BASE: u64 = 0x1_0000;
const MAX_CALL_DEPTH: usize = 16;

/// Long-run mean taken probability of an archetype (used to size chain
/// layouts and order sites within a chain).
fn mean_taken(b: &Behavior) -> f64 {
    match b {
        Behavior::Biased { taken_probability } => *taken_probability,
        Behavior::Loop { trip_count } => (*trip_count as f64 - 1.0) / (*trip_count as f64).max(1.0),
        Behavior::LocalPattern { pattern } => {
            pattern.iter().filter(|&&t| t).count() as f64 / pattern.len().max(1) as f64
        }
        Behavior::GlobalCorrelated { .. }
        | Behavior::PathCorrelated { .. }
        | Behavior::Random
        | Behavior::DataDependent { .. }
        | Behavior::InputEntropy { .. } => 0.5,
        Behavior::TimingJitter { base_trip, jitter } => {
            let t = *base_trip as f64 + *jitter as f64 / 2.0;
            (t - 1.0) / t.max(1.0)
        }
    }
}

fn build_program(spec: &ProgramSpec, rng: &mut DefaultRng) -> Program {
    assert!(spec.static_branches > 0, "need at least one static branch");
    assert!(spec.branch_density > 0.0, "branch density must be positive");

    // Mean straight-line gap to hit the requested density; 1.5 accounts
    // for the branch itself and amortized suffix instructions.
    let mean_gap = (1000.0 / spec.branch_density - 1.5).max(0.0);

    // Partition sites into chains; the chain-length bias controls branch
    // clustering (and thereby Table 3's lghist compression ratio).
    let bias = spec.chain_length_bias.clamp(0.0, 1.0);
    let mut chain_sizes = Vec::new();
    let mut remaining = spec.static_branches;
    while remaining > 0 {
        let span = 1.0 + 4.0 * bias;
        let len = ((rng.gen_f64() * span) as usize + 1)
            .clamp(1, 5)
            .min(remaining);
        chain_sizes.push(len);
        remaining -= len;
    }
    let n_chains = chain_sizes.len();
    let zipf = Zipf::new(n_chains, spec.hotness_skew);

    // Lay out chains contiguously; assign behaviours.
    let mut sites: Vec<Site> = Vec::with_capacity(spec.static_branches);
    let mut chains: Vec<Chain> = Vec::with_capacity(n_chains);
    let mut cursor = CODE_BASE;
    for &len in &chain_sizes {
        let first_site = sites.len();
        let entry = Pc::new(cursor);
        let mut behaviors: Vec<Behavior> =
            (0..len).map(|_| spec.mix.sample(rng, spec.noise)).collect();
        // Order sites by taken probability (guards first, loop back-edges
        // last): control usually falls *through* the early branches, so
        // tail sites still execute, and runs of not-taken branches share
        // fetch blocks. A loop back-edge must be last anyway — its taken
        // probability is the highest of the archetypes.
        behaviors.sort_by(|a, b| {
            mean_taken(a)
                .partial_cmp(&mean_taken(b))
                .expect("taken probabilities are finite")
        });
        // Gap layout: branches cluster at the chain tail (consecutive
        // compare-and-branch sequences) behind one leading straight-line
        // run. The leading run is sized from the *expected* number of
        // branches executed per chain entry (early taken exits skip the
        // tail), so the dynamic instruction/branch ratio meets the
        // density target.
        let mut gaps: Vec<u32> = vec![0; len];
        for g in gaps.iter_mut().skip(1) {
            *g = rng.gen_range(0..=2u32);
        }
        let mut p_reach = 1.0f64;
        let mut expected_branches = 0.0f64;
        let mut expected_shorts = 0.0f64;
        for (i, b) in behaviors.iter().enumerate() {
            expected_branches += p_reach;
            if i > 0 {
                expected_shorts += p_reach * gaps[i] as f64;
            }
            p_reach *= 1.0 - mean_taken(b);
        }
        let budget = (mean_gap * expected_branches - expected_shorts).round() as i64;
        gaps[0] = budget.clamp(0, 120) as u32;
        for (i, behavior) in behaviors.into_iter().enumerate() {
            let gap = gaps[i];
            let pc = Pc::new(cursor + 4 * gap as u64);
            cursor = pc.as_u64() + 4;
            let is_last = i == len - 1;
            let is_loop = matches!(behavior, Behavior::Loop { .. });
            let target = if is_last && is_loop {
                entry // back-edge
            } else {
                Pc::new(0) // patched below once all chains exist
            };
            sites.push(Site {
                pc,
                target,
                gap_before: gap,
                behavior,
                state: BehaviorState::default(),
            });
        }
        let suffix_pc = Pc::new(cursor);
        chains.push(Chain {
            first_site,
            len,
            entry,
            suffix_pc,
            suffix: Suffix::Fallthrough, // patched below
        });
        // Reserve the suffix slot; harmless if the suffix ends up as a
        // fallthrough (it reads as one pad instruction).
        cursor += 4;
    }

    // Patch suffixes and taken-branch targets now that chain entries are
    // known.
    let pick_chain = |rng: &mut DefaultRng, self_idx: usize| -> usize {
        let mut c = zipf.sample(rng);
        if c == self_idx {
            c = (c + 1) % n_chains;
        }
        c
    };
    for ci in 0..n_chains {
        let suffix = {
            let u: f64 = rng.gen_f64();
            if u < spec.call_fraction {
                Suffix::Call {
                    callee_chain: pick_chain(rng, ci),
                }
            } else if u < 2.0 * spec.call_fraction {
                Suffix::Return
            } else if u < 2.0 * spec.call_fraction + 0.3 {
                Suffix::Jump {
                    target_chain: pick_chain(rng, ci),
                }
            } else {
                Suffix::Fallthrough
            }
        };
        chains[ci].suffix = suffix;
        #[allow(clippy::needless_range_loop)] // indices also key `chains`
        for si in chains[ci].first_site..chains[ci].first_site + chains[ci].len {
            if sites[si].target == Pc::new(0) {
                let tc = pick_chain(rng, ci);
                sites[si].target = chains[tc].entry;
            }
        }
    }

    Program { sites, chains }
}

/// Finds which chain a PC is the entry of (for tests; linear scan).
#[cfg(test)]
fn chain_of_entry(program: &Program, pc: Pc) -> Option<usize> {
    program.chains.iter().position(|c| c.entry == pc)
}

/// Ground-truth archetype labels for every static conditional branch
/// site of `spec`'s compiled program: `(pc, behavior label)` in layout
/// order.
///
/// Program construction is deterministic from the spec's seed and
/// consumes the same RNG prefix as [`generate`], so the returned PCs are
/// exactly the conditional-branch PCs that appear in the generated
/// trace. This is the oracle the `h2p` experiment classifies
/// top-mispredicting branches against (labels as in
/// [`Behavior::label`]; H2P classes per `Behavior::label_is_h2p`).
pub fn site_labels(spec: &ProgramSpec) -> Vec<(u64, &'static str)> {
    let mut rng = DefaultRng::seed_from_u64(spec.seed);
    let program = build_program(spec, &mut rng);
    program
        .sites
        .iter()
        .map(|s| (s.pc.as_u64(), s.behavior.label()))
        .collect()
}

/// Generates the dynamic trace for a spec.
///
/// The walk starts at chain 0 and follows control flow: not-taken
/// branches fall through their chain, taken branches jump to the target
/// chain, suffix events (fallthrough / jump / call / return) route
/// control between chains. The walk ends at the first record at or beyond
/// the instruction budget.
///
/// # Panics
///
/// Panics on degenerate specs (see [`ProgramSpec::generate`]).
pub fn generate(spec: &ProgramSpec) -> Trace {
    let mut rng = DefaultRng::seed_from_u64(spec.seed);
    let mut program = build_program(spec, &mut rng);
    let n_chains = program.chains.len();
    // Taken branches look up their target chain on every dynamic branch;
    // precompute the entry-PC -> chain map.
    let entry_map: std::collections::HashMap<Pc, usize> = program
        .chains
        .iter()
        .enumerate()
        .map(|(i, c)| (c.entry, i))
        .collect();

    let mut builder = TraceBuilder::with_capacity(
        spec.name.clone(),
        (spec.instructions as f64 * spec.branch_density / 1000.0 * 1.3) as usize,
    );
    let mut global_history = 0u64;
    // One path bit per entered chain: a cheap digest of the control-flow
    // path, mirroring what one fetch block contributes to lghist.
    let mut path_history = 0u64;
    let mut call_stack: Vec<(usize, Pc)> = Vec::new();
    let mut chain_idx = 0usize;

    // A periodic "cold path" sweep guarantees the full static footprint is
    // exercised (real programs touch their cold branches during phase
    // changes): roughly 24 times per run, every chain gets one forced
    // visit, which leaves hot/cold skew intact but makes Table 2's static
    // branch counts observable (tail sites of a chain only execute when
    // the earlier sites fall through, so several visits are needed).
    let sweep_stride = (spec.instructions / (n_chains as u64 * 24 + 1)).max(200);
    let mut next_sweep_at = sweep_stride;
    let mut sweep_counter = 0usize;

    while builder.instruction_count() < spec.instructions {
        if builder.instruction_count() >= next_sweep_at {
            // Cold paths are reached through calls: the sweep calls into
            // the cold chain and returns to the interrupted hot chain,
            // so every sweep also exercises the call/return machinery.
            next_sweep_at += sweep_stride;
            let here = program.chains[chain_idx].clone();
            let cold = sweep_counter % n_chains;
            sweep_counter += 1;
            if call_stack.len() < MAX_CALL_DEPTH / 2 {
                builder.branch(BranchRecord::always_taken(
                    here.suffix_pc,
                    program.chains[cold].entry,
                    BranchKind::Call,
                ));
                call_stack.push((chain_idx, here.suffix_pc.next()));
            } else {
                // Stack already deep: visit the cold chain with a plain
                // jump so the sweep always makes progress.
                builder.branch(BranchRecord::always_taken(
                    here.suffix_pc,
                    program.chains[cold].entry,
                    BranchKind::Unconditional,
                ));
            }
            chain_idx = cold;
        }
        let chain = program.chains[chain_idx].clone();
        path_history = (path_history << 1) | chain.entry.bit(5);
        let mut taken_exit = false;
        for si in chain.first_site..chain.first_site + chain.len {
            let site = &mut program.sites[si];
            builder.run(site.gap_before as u64);
            let taken =
                site.behavior
                    .next_outcome(&mut site.state, global_history, path_history, &mut rng);
            builder.branch(BranchRecord::conditional(site.pc, site.target, taken));
            global_history = (global_history << 1) | taken as u64;
            if taken {
                // Follow the edge: loop back-edges re-enter this chain,
                // other targets enter their chain.
                let target = site.target;
                chain_idx = entry_map
                    .get(&target)
                    .copied()
                    .unwrap_or((chain_idx + 1) % n_chains);
                taken_exit = true;
                break;
            }
        }
        if taken_exit {
            continue;
        }
        // Fell off the chain end: run the suffix event.
        match chain.suffix {
            Suffix::Fallthrough => {
                // One pad instruction occupies the reserved suffix slot.
                builder.run(1);
                chain_idx = (chain_idx + 1) % n_chains;
            }
            Suffix::Jump { target_chain } => {
                builder.branch(BranchRecord::always_taken(
                    chain.suffix_pc,
                    program.chains[target_chain].entry,
                    BranchKind::Unconditional,
                ));
                chain_idx = target_chain;
            }
            Suffix::Call { callee_chain } => {
                if call_stack.len() >= MAX_CALL_DEPTH {
                    // Too deep: degrade to a jump.
                    builder.branch(BranchRecord::always_taken(
                        chain.suffix_pc,
                        program.chains[callee_chain].entry,
                        BranchKind::Unconditional,
                    ));
                } else {
                    builder.branch(BranchRecord::always_taken(
                        chain.suffix_pc,
                        program.chains[callee_chain].entry,
                        BranchKind::Call,
                    ));
                    // Return resumes at the chain after the caller.
                    let resume_chain = (chain_idx + 1) % n_chains;
                    call_stack.push((resume_chain, chain.suffix_pc.next()));
                }
                chain_idx = callee_chain;
            }
            Suffix::Return => {
                if let Some((resume_chain, resume_pc)) = call_stack.pop() {
                    builder.branch(BranchRecord::always_taken(
                        chain.suffix_pc,
                        resume_pc,
                        BranchKind::Return,
                    ));
                    // resume_pc is inside the resume chain's region; the
                    // walk restarts at that chain's entry (the skipped
                    // prefix is negligible and keeps the walk simple).
                    chain_idx = resume_chain;
                } else {
                    // Nothing to return to: fall through.
                    builder.run(1);
                    chain_idx = (chain_idx + 1) % n_chains;
                }
            }
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev8_trace::TraceStats;

    fn small_spec() -> ProgramSpec {
        ProgramSpec {
            name: "unit".into(),
            seed: 7,
            static_branches: 100,
            instructions: 200_000,
            branch_density: 120.0,
            mix: BehaviorMix::default_integer(),
            hotness_skew: 0.9,
            call_fraction: 0.1,
            noise: 0.6,
            chain_length_bias: 0.6,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_spec().generate();
        let b = small_spec().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_spec().generate();
        let mut spec = small_spec();
        spec.seed = 8;
        let b = spec.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn instruction_budget_respected() {
        let t = small_spec().generate();
        assert!(t.instruction_count() >= 200_000);
        // Overshoot is at most one chain's worth of instructions.
        assert!(t.instruction_count() < 200_000 + 1000);
    }

    #[test]
    fn density_close_to_requested() {
        let t = small_spec().generate();
        let stats = TraceStats::from_trace(&t);
        let density = stats.branch_density();
        assert!(
            (density - 120.0).abs() < 40.0,
            "density {density} too far from 120"
        );
    }

    #[test]
    fn static_footprint_mostly_covered() {
        let t = small_spec().generate();
        let stats = TraceStats::from_trace(&t);
        assert!(
            stats.static_conditional as usize > 100 / 2,
            "only {} of 100 sites executed",
            stats.static_conditional
        );
        assert!(stats.static_conditional as usize <= 100);
    }

    #[test]
    fn hotness_is_skewed() {
        let t = small_spec().generate();
        let stats = TraceStats::from_trace(&t);
        let mut counts: Vec<u64> = stats.per_branch.values().map(|s| s.executions).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top10: u64 = counts.iter().take(counts.len() / 10 + 1).sum();
        assert!(
            top10 as f64 > total as f64 * 0.2,
            "top 10% of branches should dominate: {top10}/{total}"
        );
    }

    #[test]
    fn trace_is_coherent_within_runs() {
        // Each record's straight-line run stays inside the code region.
        // The only exception is the wrap from the last chain back to
        // chain 0, whose fallthrough pad folds into the next record's
        // gap — allow a few instructions of slack for it.
        let t = small_spec().generate();
        for rec in t.iter() {
            let run_start = rec.pc.as_u64() as i64 - 4 * rec.gap as i64;
            assert!(
                run_start >= CODE_BASE as i64 - 64,
                "run start {run_start:#x} far below code base"
            );
            assert!(rec.pc.as_u64() >= CODE_BASE, "branch below code base");
        }
    }

    #[test]
    fn calls_and_returns_present_and_bounded() {
        let t = small_spec().generate();
        let stats = TraceStats::from_trace(&t);
        let calls = stats.per_kind.get(&BranchKind::Call).copied().unwrap_or(0);
        let rets = stats
            .per_kind
            .get(&BranchKind::Return)
            .copied()
            .unwrap_or(0);
        assert!(calls > 0, "expected some calls");
        assert!(rets > 0, "expected some returns");
        assert!(rets <= calls, "returns cannot exceed calls");
    }

    #[test]
    fn scaled_generation_shrinks() {
        let full = small_spec().generate();
        let tenth = small_spec().generate_scaled(0.1);
        assert!(tenth.instruction_count() < full.instruction_count() / 5);
        assert!(tenth.instruction_count() >= 20_000);
    }

    #[test]
    fn taken_rate_is_plausible() {
        let t = small_spec().generate();
        let stats = TraceStats::from_trace(&t);
        let rate = stats.taken_rate();
        assert!(
            rate > 0.25 && rate < 0.85,
            "conditional taken rate {rate} implausible"
        );
    }

    #[test]
    fn loop_back_edges_target_their_chain_entry() {
        let mut rng = DefaultRng::seed_from_u64(3);
        let spec = small_spec();
        let program = build_program(&spec, &mut rng);
        let mut checked = 0;
        for chain in &program.chains {
            let last = &program.sites[chain.first_site + chain.len - 1];
            if matches!(last.behavior, Behavior::Loop { .. }) {
                assert_eq!(last.target, chain.entry);
                checked += 1;
            }
        }
        assert!(checked > 0, "expected at least one loop chain");
    }

    #[test]
    fn site_targets_are_chain_entries() {
        let mut rng = DefaultRng::seed_from_u64(3);
        let spec = small_spec();
        let program = build_program(&spec, &mut rng);
        for site in &program.sites {
            assert!(
                chain_of_entry(&program, site.target).is_some(),
                "site target {} is not a chain entry",
                site.target
            );
        }
    }

    #[test]
    #[should_panic(expected = "need at least one static branch")]
    fn zero_branches_rejected() {
        let mut spec = small_spec();
        spec.static_branches = 0;
        spec.generate();
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        small_spec().generate_scaled(0.0);
    }
}
