//! Property-based tests of the synthetic workload generator: structural
//! invariants any generated trace must satisfy, across random spec
//! parameters.

use proptest::prelude::*;

use ev8_trace::{BranchKind, TraceStats};
use ev8_workloads::{BehaviorMix, ProgramSpec};

fn arb_spec() -> impl Strategy<Value = ProgramSpec> {
    (
        1u64..10_000,
        2usize..300,
        20_000u64..120_000,
        40.0f64..180.0,
        0.0f64..=1.0,
        0.0f64..0.25,
        0.0f64..=1.0,
        0.0f64..=1.0,
    )
        .prop_map(
            |(seed, statics, instructions, density, skew, calls, noise, chain)| ProgramSpec {
                name: format!("prop-{seed}"),
                seed,
                static_branches: statics,
                instructions,
                branch_density: density,
                mix: BehaviorMix::default_integer(),
                hotness_skew: skew,
                call_fraction: calls,
                noise,
                chain_length_bias: chain,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_deterministic(spec in arb_spec()) {
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn instruction_budget_and_counts_hold(spec in arb_spec()) {
        let t = spec.generate();
        prop_assert!(t.instruction_count() >= spec.instructions);
        // The walk stops at the first record boundary past the budget.
        prop_assert!(
            t.instruction_count() < spec.instructions + 5_000,
            "overshoot {} on budget {}",
            t.instruction_count(),
            spec.instructions
        );
        // Builder bookkeeping: counts equal records + gaps.
        let sum: u64 =
            t.len() as u64 + t.iter().map(|r| r.gap as u64).sum::<u64>();
        prop_assert_eq!(sum, t.instruction_count());
    }

    #[test]
    fn static_footprint_never_exceeds_spec(spec in arb_spec()) {
        let t = spec.generate();
        let stats = TraceStats::from_trace(&t);
        prop_assert!(stats.static_conditional as usize <= spec.static_branches);
        prop_assert!(stats.dynamic_conditional > 0);
    }

    #[test]
    fn calls_and_returns_balance(spec in arb_spec()) {
        let t = spec.generate();
        let stats = TraceStats::from_trace(&t);
        let calls = stats.per_kind.get(&BranchKind::Call).copied().unwrap_or(0);
        let rets = stats.per_kind.get(&BranchKind::Return).copied().unwrap_or(0);
        prop_assert!(rets <= calls, "returns {rets} exceed calls {calls}");
    }

    #[test]
    fn non_conditional_records_are_taken(spec in arb_spec()) {
        let t = spec.generate();
        for rec in t.iter() {
            if rec.kind.is_always_taken() {
                prop_assert!(rec.is_taken(), "{rec}");
            }
        }
    }

    #[test]
    fn pcs_are_instruction_aligned_and_in_region(spec in arb_spec()) {
        let t = spec.generate();
        for rec in t.iter() {
            prop_assert_eq!(rec.pc.as_u64() % 4, 0);
            prop_assert_eq!(rec.target.as_u64() % 4, 0);
            prop_assert!(rec.pc.as_u64() >= 0x1_0000);
            prop_assert!(rec.target.as_u64() >= 0x1_0000);
        }
    }

    #[test]
    fn density_tracks_target_loosely(spec in arb_spec()) {
        // Density calibration is approximate but must stay in the right
        // regime across the whole parameter space.
        let t = spec.generate();
        let stats = TraceStats::from_trace(&t);
        let density = stats.branch_density();
        prop_assert!(
            density > spec.branch_density * 0.4 && density < spec.branch_density * 2.5,
            "density {density} vs target {}",
            spec.branch_density
        );
    }
}
