//! Property-based tests of the synthetic workload generator: structural
//! invariants any generated trace must satisfy, across random spec
//! parameters.
//!
//! Driven by the in-tree deterministic harness (`ev8_util::prop`);
//! failures report an `EV8_PROP_CASE_SEED` that reproduces them.

use ev8_util::prop::{check, Gen};
use ev8_util::{prop_assert, prop_assert_eq};

use ev8_trace::{BranchKind, TraceStats};
use ev8_workloads::{spec95, BehaviorMix, ProgramSpec};

const CASES: u64 = 24;

fn arb_spec(g: &mut Gen) -> ProgramSpec {
    let seed = g.range(1u64..10_000);
    ProgramSpec {
        name: format!("prop-{seed}"),
        seed,
        static_branches: g.range(2usize..300),
        instructions: g.range(20_000u64..120_000),
        branch_density: g.range(40.0f64..180.0),
        mix: BehaviorMix::default_integer(),
        hotness_skew: g.range(0.0f64..=1.0),
        call_fraction: g.range(0.0f64..0.25),
        noise: g.range(0.0f64..=1.0),
        chain_length_bias: g.range(0.0f64..=1.0),
    }
}

#[test]
fn generation_is_deterministic() {
    check("generation_is_deterministic", CASES, |g| {
        let spec = arb_spec(g);
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(a, b);
        Ok(())
    });
}

#[test]
fn instruction_budget_and_counts_hold() {
    check("instruction_budget_and_counts_hold", CASES, |g| {
        let spec = arb_spec(g);
        let t = spec.generate();
        prop_assert!(t.instruction_count() >= spec.instructions);
        // The walk stops at the first record boundary past the budget.
        prop_assert!(
            t.instruction_count() < spec.instructions + 5_000,
            "overshoot {} on budget {}",
            t.instruction_count(),
            spec.instructions
        );
        // Builder bookkeeping: counts equal records + gaps.
        let sum: u64 = t.len() as u64 + t.iter().map(|r| r.gap as u64).sum::<u64>();
        prop_assert_eq!(sum, t.instruction_count());
        Ok(())
    });
}

#[test]
fn static_footprint_never_exceeds_spec() {
    check("static_footprint_never_exceeds_spec", CASES, |g| {
        let spec = arb_spec(g);
        let t = spec.generate();
        let stats = TraceStats::from_trace(&t);
        prop_assert!(stats.static_conditional as usize <= spec.static_branches);
        prop_assert!(stats.dynamic_conditional > 0);
        Ok(())
    });
}

#[test]
fn calls_and_returns_balance() {
    check("calls_and_returns_balance", CASES, |g| {
        let spec = arb_spec(g);
        let t = spec.generate();
        let stats = TraceStats::from_trace(&t);
        let calls = stats.per_kind.get(&BranchKind::Call).copied().unwrap_or(0);
        let rets = stats
            .per_kind
            .get(&BranchKind::Return)
            .copied()
            .unwrap_or(0);
        prop_assert!(rets <= calls, "returns {rets} exceed calls {calls}");
        Ok(())
    });
}

#[test]
fn non_conditional_records_are_taken() {
    check("non_conditional_records_are_taken", CASES, |g| {
        let spec = arb_spec(g);
        let t = spec.generate();
        for rec in t.iter() {
            if rec.kind.is_always_taken() {
                prop_assert!(rec.is_taken(), "{rec}");
            }
        }
        Ok(())
    });
}

#[test]
fn pcs_are_instruction_aligned_and_in_region() {
    check("pcs_are_instruction_aligned_and_in_region", CASES, |g| {
        let spec = arb_spec(g);
        let t = spec.generate();
        for rec in t.iter() {
            prop_assert_eq!(rec.pc.as_u64() % 4, 0);
            prop_assert_eq!(rec.target.as_u64() % 4, 0);
            prop_assert!(rec.pc.as_u64() >= 0x1_0000);
            prop_assert!(rec.target.as_u64() >= 0x1_0000);
        }
        Ok(())
    });
}

#[test]
fn cached_trace_is_bit_identical_to_fresh_generation() {
    check(
        "cached_trace_is_bit_identical_to_fresh_generation",
        12,
        |g| {
            // Random suite benchmark at a random (tiny) scale: the memoized
            // provider must return exactly what direct generation produces —
            // this is the property that makes the cache sound to use
            // everywhere.
            let name = *g.choose(&spec95::NAMES);
            // Quantized scales keep the global cache small across cases
            // while still exercising several distinct keys per benchmark.
            let scale = g.range(1u64..=4) as f64 * 0.0002;
            let cached = spec95::cached(name, scale).expect("suite name");
            let fresh = spec95::benchmark(name)
                .expect("suite name")
                .generate_scaled(scale);
            prop_assert_eq!(&*cached, &fresh);
            // And a second fetch returns the same allocation, not a copy.
            let again = spec95::cached(name, scale).expect("suite name");
            prop_assert!(std::sync::Arc::ptr_eq(&cached, &again));
            Ok(())
        },
    );
}

#[test]
fn density_tracks_target_loosely() {
    check("density_tracks_target_loosely", CASES, |g| {
        let spec = arb_spec(g);
        // Density calibration is approximate but must stay in the right
        // regime across the whole parameter space.
        let t = spec.generate();
        let stats = TraceStats::from_trace(&t);
        let density = stats.branch_density();
        prop_assert!(
            density > spec.branch_density * 0.4 && density < spec.branch_density * 2.5,
            "density {density} vs target {}",
            spec.branch_density
        );
        Ok(())
    });
}
