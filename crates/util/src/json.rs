//! A minimal JSON writer.
//!
//! The workspace only ever *emits* JSON (experiment results, trace
//! metadata); it never parses it. So instead of a serialization
//! framework, types implement [`ToJson`] — "append your JSON form to this
//! string" — and composite values use [`JsonObject`] / [`write_array`].
//!
//! Numbers are emitted per RFC 8259 (non-finite floats become `null`),
//! strings are escaped per the JSON grammar.
//!
//! # Example
//!
//! ```
//! use ev8_util::json::{JsonObject, ToJson};
//!
//! let mut o = JsonObject::new();
//! o.field("name", &"gcc");
//! o.field("misp_per_ki", &4.5f64);
//! o.field("branches", &12086u64);
//! assert_eq!(
//!     o.finish(),
//!     r#"{"name":"gcc","misp_per_ki":4.5,"branches":12086}"#
//! );
//! ```

use std::fmt::Write as _;

/// Append-your-JSON-form serialization.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// This value's JSON representation as a fresh string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

macro_rules! impl_int_tojson {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}

impl_int_tojson!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{}` on f64 always produces a valid JSON number for finite
            // values (no exponent-less trailing dot, no localization).
            let _ = write!(out, "{self}");
        } else {
            out.push_str("null");
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        write_array(out, self.iter());
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_array(out, self.iter());
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

/// Appends a JSON array of `items` to `out`.
pub fn write_array<'a, T: ToJson + 'a>(out: &mut String, items: impl Iterator<Item = &'a T>) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

/// An incremental JSON object builder preserving field order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    fields: usize,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            fields: 0,
        }
    }

    /// Appends one `"key": value` field.
    pub fn field(&mut self, key: &str, value: &dyn ToJson) -> &mut Self {
        if self.fields > 0 {
            self.buf.push(',');
        }
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
        value.write_json(&mut self.buf);
        self.fields += 1;
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    /// Closes the object, appending the JSON text to `out`.
    pub fn finish_into(self, out: &mut String) {
        out.push_str(&self.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(true.to_json(), "true");
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-7i32).to_json(), "-7");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!("hi".to_json(), "\"hi\"");
        assert_eq!(Option::<u32>::None.to_json(), "null");
        assert_eq!(Some(3u32).to_json(), "3");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("a\"b".to_json(), r#""a\"b""#);
        assert_eq!("back\\slash".to_json(), r#""back\\slash""#);
        assert_eq!("line\nbreak".to_json(), r#""line\nbreak""#);
        assert_eq!("\u{1}".to_json(), r#""\u0001""#);
        assert_eq!("unicode: é✓".to_json(), "\"unicode: é✓\"");
    }

    #[test]
    fn arrays_and_objects_compose() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.to_json(), "[1,2,3]");
        let empty: Vec<u32> = Vec::new();
        assert_eq!(empty.to_json(), "[]");

        let mut o = JsonObject::new();
        o.field("xs", &v).field("label", &"t");
        assert_eq!(o.finish(), r#"{"xs":[1,2,3],"label":"t"}"#);
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn nested_object_via_finish_into() {
        let mut inner = JsonObject::new();
        inner.field("a", &1u8);
        let mut s = String::new();
        inner.finish_into(&mut s);
        assert_eq!(s, r#"{"a":1}"#);
    }
}
