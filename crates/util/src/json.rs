//! A minimal JSON writer, plus a raw top-level-object reader for
//! merge-on-write result files.
//!
//! The workspace *emits* JSON (experiment results, trace metadata)
//! through [`ToJson`] — "append your JSON form to this string" — and
//! composite values use [`JsonObject`] / [`write_array`].
//!
//! The one place JSON is read back is bench-result accumulation:
//! `BENCH_*.json` files hold one entry per (group, benchmark) key, and
//! each bench run must *merge* its entries into the file instead of
//! clobbering other groups' history. [`parse_raw_object`] splits a
//! top-level object into `(key, raw value text)` pairs without
//! interpreting the values — no number round-tripping, no data model —
//! and [`merge_raw_object`] rebuilds the merged document.
//!
//! Numbers are emitted per RFC 8259 (non-finite floats become `null`),
//! strings are escaped per the JSON grammar.
//!
//! # Example
//!
//! ```
//! use ev8_util::json::{JsonObject, ToJson};
//!
//! let mut o = JsonObject::new();
//! o.field("name", &"gcc");
//! o.field("misp_per_ki", &4.5f64);
//! o.field("branches", &12086u64);
//! assert_eq!(
//!     o.finish(),
//!     r#"{"name":"gcc","misp_per_ki":4.5,"branches":12086}"#
//! );
//! ```

use std::fmt::Write as _;

/// Append-your-JSON-form serialization.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// This value's JSON representation as a fresh string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(out, self);
    }
}

macro_rules! impl_int_tojson {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}

impl_int_tojson!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // `{}` on f64 always produces a valid JSON number for finite
            // values (no exponent-less trailing dot, no localization).
            let _ = write!(out, "{self}");
        } else {
            out.push_str("null");
        }
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        write_array(out, self.iter());
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_array(out, self.iter());
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

/// Appends a JSON array of `items` to `out`.
pub fn write_array<'a, T: ToJson + 'a>(out: &mut String, items: impl Iterator<Item = &'a T>) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

/// An incremental JSON object builder preserving field order.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    fields: usize,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            fields: 0,
        }
    }

    /// Appends one `"key": value` field.
    pub fn field(&mut self, key: &str, value: &dyn ToJson) -> &mut Self {
        if self.fields > 0 {
            self.buf.push(',');
        }
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
        value.write_json(&mut self.buf);
        self.fields += 1;
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    /// Closes the object, appending the JSON text to `out`.
    pub fn finish_into(self, out: &mut String) {
        out.push_str(&self.finish());
    }
}

/// Splits the top-level JSON object in `text` into `(key, raw value)`
/// pairs, in document order.
///
/// Values are returned as *verbatim source text* (trimmed of
/// surrounding whitespace), not parsed into a data model — so merging
/// and re-emitting entries never perturbs number formatting. Nested
/// objects/arrays and escaped strings are skipped structurally.
///
/// Returns `Err` with a short description when `text` is not a single
/// well-formed top-level object (callers typically treat that as "start
/// a fresh file").
pub fn parse_raw_object(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut entries = Vec::new();
    let bytes = text.as_bytes();
    let mut i = skip_ws(bytes, 0);
    if bytes.get(i) != Some(&b'{') {
        return Err("expected '{' at start of object".into());
    }
    i = skip_ws(bytes, i + 1);
    if bytes.get(i) == Some(&b'}') {
        i = skip_ws(bytes, i + 1);
        return if i == bytes.len() {
            Ok(entries)
        } else {
            Err("trailing data after object".into())
        };
    }
    loop {
        let (key, after_key) = parse_string(bytes, i)?;
        i = skip_ws(bytes, after_key);
        if bytes.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i = skip_ws(bytes, i + 1);
        let value_start = i;
        i = skip_value(bytes, i)?;
        let value = text[value_start..i].trim().to_owned();
        entries.push((key, value));
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(&b',') => i = skip_ws(bytes, i + 1),
            Some(&b'}') => {
                i = skip_ws(bytes, i + 1);
                return if i == bytes.len() {
                    Ok(entries)
                } else {
                    Err("trailing data after object".into())
                };
            }
            _ => return Err("expected ',' or '}' after value".into()),
        }
    }
}

/// Merges `updates` into the top-level object `existing` (verbatim raw
/// values, as produced by [`parse_raw_object`]) and renders the result:
/// keys already present are overwritten in place, new keys append, and
/// the output puts one entry per line (stable diffs as the file
/// accumulates runs).
///
/// `existing` entries whose key `retain` rejects are dropped — callers
/// use this to shed entries from a superseded file schema.
pub fn merge_raw_object(
    existing: &[(String, String)],
    updates: &[(String, String)],
    retain: impl Fn(&str) -> bool,
) -> String {
    let mut merged: Vec<(String, String)> = existing
        .iter()
        .filter(|(k, _)| retain(k))
        .cloned()
        .collect();
    for (key, value) in updates {
        match merged.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.clone(),
            None => merged.push((key.clone(), value.clone())),
        }
    }
    let mut out = String::from("{");
    for (i, (key, value)) in merged.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        write_escaped(&mut out, key);
        out.push(':');
        out.push_str(value);
    }
    out.push_str("\n}\n");
    out
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while matches!(bytes.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        i += 1;
    }
    i
}

/// Parses the JSON string starting at `i` (which must be a `"`),
/// returning the unescaped content and the index just past the closing
/// quote. Only the escapes this module emits are decoded; `\u` escapes
/// are preserved verbatim (keys in this workspace are ASCII paths).
fn parse_string(bytes: &[u8], i: usize) -> Result<(String, usize), String> {
    if bytes.get(i) != Some(&b'"') {
        return Err("expected '\"' at start of key".into());
    }
    let mut out = String::new();
    let mut j = i + 1;
    loop {
        match bytes.get(j) {
            None => return Err("unterminated string".into()),
            Some(&b'"') => return Ok((out, j + 1)),
            Some(&b'\\') => {
                let esc = bytes.get(j + 1).ok_or("unterminated escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'/' => out.push('/'),
                    _ => {
                        out.push('\\');
                        out.push(*esc as char);
                    }
                }
                j += 2;
            }
            Some(&b) => {
                // Multi-byte UTF-8 passes through byte-by-byte; keys are
                // rebuilt as valid UTF-8 because input was a &str.
                let ch_len = utf8_len(b);
                let end = j + ch_len;
                let slice = bytes.get(j..end).ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(slice).map_err(|e| e.to_string())?);
                j = end;
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Advances past one JSON value starting at `i`, tracking brace/bracket
/// depth and skipping string contents; returns the index just past the
/// value.
fn skip_value(bytes: &[u8], mut i: usize) -> Result<usize, String> {
    match bytes.get(i) {
        None => Err("expected a value".into()),
        Some(&b'"') => parse_string(bytes, i).map(|(_, end)| end),
        Some(&b'{') | Some(&b'[') => {
            let mut depth = 0usize;
            loop {
                match bytes.get(i) {
                    None => return Err("unterminated container".into()),
                    Some(&b'"') => i = parse_string(bytes, i)?.1,
                    Some(&b'{') | Some(&b'[') => {
                        depth += 1;
                        i += 1;
                    }
                    Some(&b'}') | Some(&b']') => {
                        depth -= 1;
                        i += 1;
                        if depth == 0 {
                            return Ok(i);
                        }
                    }
                    Some(_) => i += 1,
                }
            }
        }
        Some(_) => {
            // Scalar: number, true/false/null. Runs to the next
            // structural delimiter.
            let start = i;
            while let Some(&b) = bytes.get(i) {
                if matches!(b, b',' | b'}' | b']' | b' ' | b'\t' | b'\n' | b'\r') {
                    break;
                }
                i += 1;
            }
            if i == start {
                return Err("expected a value".into());
            }
            Ok(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(true.to_json(), "true");
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-7i32).to_json(), "-7");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!("hi".to_json(), "\"hi\"");
        assert_eq!(Option::<u32>::None.to_json(), "null");
        assert_eq!(Some(3u32).to_json(), "3");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!("a\"b".to_json(), r#""a\"b""#);
        assert_eq!("back\\slash".to_json(), r#""back\\slash""#);
        assert_eq!("line\nbreak".to_json(), r#""line\nbreak""#);
        assert_eq!("\u{1}".to_json(), r#""\u0001""#);
        assert_eq!("unicode: é✓".to_json(), "\"unicode: é✓\"");
    }

    #[test]
    fn arrays_and_objects_compose() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.to_json(), "[1,2,3]");
        let empty: Vec<u32> = Vec::new();
        assert_eq!(empty.to_json(), "[]");

        let mut o = JsonObject::new();
        o.field("xs", &v).field("label", &"t");
        assert_eq!(o.finish(), r#"{"xs":[1,2,3],"label":"t"}"#);
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn nested_object_via_finish_into() {
        let mut inner = JsonObject::new();
        inner.field("a", &1u8);
        let mut s = String::new();
        inner.finish_into(&mut s);
        assert_eq!(s, r#"{"a":1}"#);
    }

    #[test]
    fn raw_object_roundtrips_own_output() {
        let mut o = JsonObject::new();
        o.field("name", &"gcc\"quoted")
            .field("rate", &4.25f64)
            .field("xs", &vec![1u32, 2])
            .field("none", &Option::<u32>::None);
        let text = o.finish();
        let entries = parse_raw_object(&text).unwrap();
        assert_eq!(
            entries,
            vec![
                ("name".to_owned(), r#""gcc\"quoted""#.to_owned()),
                ("rate".to_owned(), "4.25".to_owned()),
                ("xs".to_owned(), "[1,2]".to_owned()),
                ("none".to_owned(), "null".to_owned()),
            ]
        );
    }

    #[test]
    fn raw_object_preserves_value_text_verbatim() {
        // Number formatting must survive a parse/merge cycle untouched —
        // the whole point of the raw representation.
        let text = r#"{"a":1848599,"b":10668619.857524537,"c":{"nested":[1,{"x":"}"}]}}"#;
        let entries = parse_raw_object(text).unwrap();
        assert_eq!(entries[1].1, "10668619.857524537");
        assert_eq!(entries[2].1, r#"{"nested":[1,{"x":"}"}]}"#);
        let merged = merge_raw_object(&entries, &[], |_| true);
        let reparsed = parse_raw_object(&merged).unwrap();
        assert_eq!(entries, reparsed);
    }

    #[test]
    fn raw_object_accepts_whitespace_and_empty() {
        assert_eq!(parse_raw_object("{}").unwrap(), vec![]);
        assert_eq!(parse_raw_object("  {\n}  \n").unwrap(), vec![]);
        let entries = parse_raw_object("{ \"k\" :\n 7 ,\n\"l\": true }").unwrap();
        assert_eq!(
            entries,
            vec![
                ("k".to_owned(), "7".to_owned()),
                ("l".to_owned(), "true".to_owned())
            ]
        );
    }

    #[test]
    fn raw_object_rejects_malformed_documents() {
        for bad in [
            "",
            "[1,2]",
            "{",
            "{\"k\"}",
            "{\"k\":}",
            "{\"k\":1",
            "{\"k\":1} trailing",
            "{\"k\" 1}",
            "{\"unterminated",
        ] {
            assert!(parse_raw_object(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn merge_overwrites_appends_and_retains_order() {
        let existing = vec![
            ("a/x".to_owned(), "1".to_owned()),
            ("b/y".to_owned(), "2".to_owned()),
            ("legacy".to_owned(), "3".to_owned()),
        ];
        let updates = vec![
            ("b/y".to_owned(), "20".to_owned()),
            ("c/z".to_owned(), "30".to_owned()),
        ];
        let merged = merge_raw_object(&existing, &updates, |k| k.contains('/'));
        let entries = parse_raw_object(&merged).unwrap();
        assert_eq!(
            entries,
            vec![
                ("a/x".to_owned(), "1".to_owned()),
                ("b/y".to_owned(), "20".to_owned()),
                ("c/z".to_owned(), "30".to_owned()),
            ]
        );
        // One entry per line for stable diffs.
        assert_eq!(merged.lines().count(), 2 + entries.len());
    }

    #[test]
    fn merge_into_empty_is_just_the_updates() {
        let merged = merge_raw_object(&[], &[("g/b".to_owned(), "{\"v\":1}".to_owned())], |_| true);
        assert_eq!(merged, "{\n\"g/b\":{\"v\":1}\n}\n");
    }
}
