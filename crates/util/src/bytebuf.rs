//! A growable little-endian byte writer and a cursor reader.
//!
//! The trace codec needs exactly two things from a byte-buffer library:
//! appending primitive values to a growable buffer, and reading them back
//! from a slice with position tracking. [`ByteBuf`] and [`ByteCursor`]
//! provide those on top of `Vec<u8>` / `&[u8]`, nothing more.
//!
//! # Example
//!
//! ```
//! use ev8_util::bytebuf::{ByteBuf, ByteCursor};
//!
//! let mut b = ByteBuf::with_capacity(16);
//! b.put_u8(0xAB);
//! b.put_u16_le(0x1234);
//! b.put_slice(b"hey");
//!
//! let mut c = ByteCursor::new(b.as_slice());
//! assert_eq!(c.get_u8(), Some(0xAB));
//! assert_eq!(c.get_u16_le(), Some(0x1234));
//! assert_eq!(c.get_slice(3), Some(&b"hey"[..]));
//! assert!(c.is_empty());
//! ```

/// A growable byte buffer with little-endian primitive appends.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// An empty buffer.
    pub const fn new() -> Self {
        ByteBuf { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteBuf {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a `u16` in little-endian order.
    #[inline]
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    #[inline]
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    #[inline]
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    #[inline]
    pub fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written (or after [`ByteBuf::clear`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Empties the buffer, keeping its allocation.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The written bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the buffer, returning the written bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl AsRef<[u8]> for ByteBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for ByteBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// A reading cursor over a byte slice.
///
/// Every `get_*` returns `None` once the remaining bytes run out, leaving
/// the position unchanged — truncation is detected, never panics.
#[derive(Clone, Debug)]
pub struct ByteCursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    /// A cursor at the start of `data`.
    pub const fn new(data: &'a [u8]) -> Self {
        ByteCursor { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when everything has been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The current read position.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one byte.
    #[inline]
    pub fn get_u8(&mut self) -> Option<u8> {
        let b = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn get_u16_le(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.get_array()?))
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn get_u32_le(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.get_array()?))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn get_u64_le(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.get_array()?))
    }

    /// Reads `n` raw bytes.
    #[inline]
    pub fn get_slice(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn get_array<const N: usize>(&mut self) -> Option<[u8; N]> {
        let s = self.get_slice(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_all_widths() {
        let mut b = ByteBuf::new();
        b.put_u8(1);
        b.put_u16_le(0x0203);
        b.put_u32_le(0x0405_0607);
        b.put_u64_le(0x0809_0A0B_0C0D_0E0F);
        b.put_slice(&[0xAA, 0xBB]);
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 2);

        let mut c = ByteCursor::new(&b);
        assert_eq!(c.get_u8(), Some(1));
        assert_eq!(c.get_u16_le(), Some(0x0203));
        assert_eq!(c.get_u32_le(), Some(0x0405_0607));
        assert_eq!(c.get_u64_le(), Some(0x0809_0A0B_0C0D_0E0F));
        assert_eq!(c.get_slice(2), Some(&[0xAA, 0xBB][..]));
        assert!(c.is_empty());
        assert_eq!(c.get_u8(), None);
    }

    #[test]
    fn little_endian_layout_is_exact() {
        let mut b = ByteBuf::new();
        b.put_u16_le(0x1234);
        assert_eq!(b.as_slice(), &[0x34, 0x12]);
    }

    #[test]
    fn truncated_reads_leave_position() {
        let mut c = ByteCursor::new(&[1, 2, 3]);
        assert_eq!(c.get_u32_le(), None);
        assert_eq!(c.position(), 0);
        assert_eq!(c.get_u16_le(), Some(0x0201));
        assert_eq!(c.get_u16_le(), None);
        assert_eq!(c.remaining(), 1);
    }

    #[test]
    fn clear_keeps_capacity_semantics() {
        let mut b = ByteBuf::with_capacity(4);
        b.put_u32_le(7);
        assert!(!b.is_empty());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn into_vec_roundtrip() {
        let mut b = ByteBuf::new();
        b.put_slice(b"abc");
        assert_eq!(b.clone().into_vec(), b"abc".to_vec());
        assert_eq!(b.as_ref(), b"abc");
    }
}
