//! CRC-32 (IEEE 802.3) checksums.
//!
//! The corpus format checksums every compressed chunk and its header +
//! index region so that storage corruption surfaces as a typed decode
//! error instead of silently wrong records. This is the standard
//! reflected CRC-32 (polynomial `0xEDB88320`, init and xor-out
//! `0xFFFFFFFF`) — the same function as zlib's `crc32` — computed with a
//! compile-time 256-entry table, so checksumming costs one table lookup
//! per byte and the crate stays dependency-free.
//!
//! # Example
//!
//! ```
//! use ev8_util::crc::crc32;
//!
//! // The classic check value for the ASCII bytes "123456789".
//! assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
//! ```

/// Reflected CRC-32 polynomial (IEEE 802.3).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one slot per input byte value.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes` in one call.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// An incremental CRC-32 hasher for data that arrives in pieces.
///
/// # Example
///
/// ```
/// use ev8_util::crc::{crc32, Crc32};
///
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finish(), crc32(b"123456789"));
/// ```
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far. Does not consume the
    /// hasher; further [`Crc32::update`] calls continue the stream.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_values() {
        // Reference values shared by every standard CRC-32 implementation.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(crc32(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0usize, 1, 7, 255, 256, 9_999, 10_000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn finish_is_observation_not_consumption() {
        let mut h = Crc32::new();
        h.update(b"1234");
        let _ = h.finish();
        h.update(b"56789");
        assert_eq!(h.finish(), crc32(b"123456789"));
    }

    #[test]
    fn single_bit_flips_always_change_the_checksum() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut m = data.clone();
                m[i] ^= 1 << bit;
                assert_ne!(crc32(&m), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
