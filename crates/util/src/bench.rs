//! A lightweight `std::time::Instant`-based benchmark harness.
//!
//! Replaces `criterion` for the workspace's `harness = false` bench
//! targets. The measurement model is simple and honest: per benchmark,
//! one warm-up call, then `sample_size` timed samples (each sample runs
//! the closure enough times to cover a minimum measurable span), and the
//! report shows the median and minimum per-iteration time plus element
//! throughput when declared.
//!
//! # Example (a `benches/foo.rs` with `harness = false`)
//!
//! ```no_run
//! use ev8_util::bench::Harness;
//!
//! fn main() {
//!     let mut h = Harness::from_env();
//!     let mut g = h.group("sums");
//!     g.throughput(1_000);
//!     g.bench("sum_1k", |b| {
//!         b.iter(|| (0..1_000u64).sum::<u64>())
//!     });
//!     g.finish();
//! }
//! ```
//!
//! `cargo bench` runs offline; `EV8_BENCH_SAMPLES` overrides the sample
//! count — including any per-group [`Group::sample_size`] calls, so
//! `EV8_BENCH_SAMPLES=1` is a true one-sample smoke run (this is what
//! `scripts/ci.sh` uses) — and a positional command-line argument
//! filters benchmarks by substring of `group/name`.

use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: keeps a computed value alive so
/// the optimizer cannot delete the benchmarked work.
pub fn black_box<T>(v: T) -> T {
    hint_black_box(v)
}

/// Minimum time span one sample should cover; closures faster than this
/// are batched until a sample is measurable.
const MIN_SAMPLE: Duration = Duration::from_millis(2);

/// The top-level bench harness: parses the CLI filter and prints the
/// session header/footer.
pub struct Harness {
    filter: Option<String>,
    sample_size: usize,
    /// True when `sample_size` came from `EV8_BENCH_SAMPLES`; the env
    /// var then also wins over per-group [`Group::sample_size`] calls.
    env_samples: bool,
    ran: usize,
}

impl Harness {
    /// Builds a harness from command-line arguments and environment.
    ///
    /// Flags injected by `cargo bench` (`--bench`, `--nocapture`, ...)
    /// are ignored; the first non-flag argument is a substring filter on
    /// `group/name`. `EV8_BENCH_SAMPLES` sets the per-benchmark sample
    /// count (default 10) and, when present, overrides per-group
    /// [`Group::sample_size`] calls too.
    pub fn from_env() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let env_sample_size = std::env::var("EV8_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&n: &usize| n > 0);
        Harness {
            filter,
            sample_size: env_sample_size.unwrap_or(10),
            env_samples: env_sample_size.is_some(),
            ran: 0,
        }
    }

    /// A harness with an explicit filter and sample count (for tests).
    pub fn with_config(filter: Option<String>, sample_size: usize) -> Self {
        Harness {
            filter,
            sample_size: sample_size.max(1),
            env_samples: false,
            ran: 0,
        }
    }

    /// Starts a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_owned(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Number of benchmarks actually run (after filtering).
    pub fn ran(&self) -> usize {
        self.ran
    }
}

/// A group of related benchmarks sharing a throughput declaration.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    throughput: Option<u64>,
    sample_size: Option<usize>,
}

impl Group<'_> {
    /// Declares how many logical elements one iteration processes, so the
    /// report can show elements/second.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    /// Overrides the harness sample count for this group. An
    /// `EV8_BENCH_SAMPLES` environment setting still wins, so smoke runs
    /// stay one-sample even through groups that ask for more.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark (unless filtered out) and prints its line.
    pub fn bench(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let sample_size = if self.harness.env_samples {
            self.harness.sample_size
        } else {
            self.sample_size.unwrap_or(self.harness.sample_size)
        };
        let mut b = Bencher {
            sample_size,
            result: None,
        };
        f(&mut b);
        self.harness.ran += 1;
        match b.result {
            Some(m) => println!("{}", m.report_line(&full, self.throughput)),
            None => println!("{full:<44} (no measurement: Bencher::iter never called)"),
        }
    }

    /// Ends the group (purely cosmetic; prints nothing today).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    sample_size: usize,
    result: Option<Measurement>,
}

/// A completed measurement: per-iteration times across samples.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest per-iteration time observed.
    pub min: Duration,
    /// Iterations batched into each sample.
    pub batch: u32,
    /// Number of samples taken.
    pub samples: usize,
}

impl Measurement {
    fn report_line(&self, name: &str, throughput: Option<u64>) -> String {
        let mut line = format!(
            "{name:<44} {:>12}/iter  (min {:>12}, {} samples x {} iters)",
            fmt_duration(self.median),
            fmt_duration(self.min),
            self.samples,
            self.batch,
        );
        if let Some(elements) = throughput {
            let secs = self.median.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!("  {:>12}", fmt_rate(elements as f64 / secs)));
            }
        }
        line
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} Gelem/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} Melem/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} Kelem/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} elem/s")
    }
}

impl Bencher {
    /// Measures the closure: one warm-up call (also used to size the
    /// per-sample batch), then `sample_size` timed samples.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm-up + batch sizing.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch: u32 = if once >= MIN_SAMPLE {
            1
        } else {
            (MIN_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u32
        };

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(t.elapsed() / batch);
        }
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        self.result = Some(Measurement {
            median,
            min,
            batch,
            samples: self.sample_size,
        });
    }

    /// The measurement, once [`Bencher::iter`] has run.
    pub fn measurement(&self) -> Option<&Measurement> {
        self.result.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut h = Harness::with_config(None, 3);
        let mut ran_inner = false;
        {
            let mut g = h.group("g");
            g.throughput(100);
            g.bench("busy", |b| {
                b.iter(|| {
                    ran_inner = true;
                    (0..1000u64).map(black_box).sum::<u64>()
                });
                let m = b.measurement().expect("measured");
                assert!(m.median >= m.min);
                assert!(m.batch >= 1);
                assert_eq!(m.samples, 3);
            });
            g.finish();
        }
        assert!(ran_inner);
        assert_eq!(h.ran(), 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut h = Harness::with_config(Some("match-me".into()), 2);
        {
            let mut g = h.group("grp");
            g.bench("other", |_| panic!("must be filtered out"));
            g.bench("match-me-exactly", |b| b.iter(|| 1u32 + 1));
        }
        assert_eq!(h.ran(), 1);
    }

    #[test]
    fn env_sample_count_beats_group_sample_size() {
        let mut h = Harness {
            filter: None,
            sample_size: 2,
            env_samples: true,
            ran: 0,
        };
        let mut g = h.group("g");
        g.sample_size(50);
        g.bench("b", |b| {
            b.iter(|| 1u32 + 1);
            assert_eq!(b.measurement().unwrap().samples, 2);
        });
    }

    #[test]
    fn group_sample_size_applies_without_env_override() {
        let mut h = Harness::with_config(None, 9);
        let mut g = h.group("g");
        g.sample_size(4);
        g.bench("b", |b| {
            b.iter(|| 1u32 + 1);
            assert_eq!(b.measurement().unwrap().samples, 4);
        });
    }

    #[test]
    fn slow_closures_get_batch_of_one() {
        let mut h = Harness::with_config(None, 2);
        let mut g = h.group("slow");
        g.bench("sleepy", |b| {
            b.iter(|| std::thread::sleep(Duration::from_millis(3)));
            assert_eq!(b.measurement().unwrap().batch, 1);
        });
    }

    #[test]
    fn duration_and_rate_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
        assert!(fmt_rate(5e9).ends_with("Gelem/s"));
        assert!(fmt_rate(5e6).ends_with("Melem/s"));
        assert!(fmt_rate(5e3).ends_with("Kelem/s"));
        assert!(fmt_rate(5.0).ends_with("elem/s"));
    }
}
