//! A deterministic property-testing mini-harness.
//!
//! Replaces `proptest` for the workspace's four property suites with the
//! three features that actually matter for branch-predictor invariants:
//!
//! 1. **Seeded case generation** — every case is produced by a [`Gen`]
//!    whose xoshiro256\*\* stream derives from `(base seed, case index)`.
//!    The base seed is a fixed constant, so two consecutive `cargo test`
//!    runs exercise *identical* inputs; set `EV8_PROP_SEED` to explore a
//!    different corner of the input space.
//! 2. **Shrinking-lite** — on failure the harness re-runs the failing
//!    case seed at progressively smaller size scales (collections drawn
//!    through [`Gen::vec`]/[`Gen::len`] shrink proportionally) and
//!    reports the smallest scale that still fails.
//! 3. **Failure-seed reporting** — the panic message contains the exact
//!    `EV8_PROP_CASE_SEED` / `EV8_PROP_SCALE` pair that reproduces the
//!    minimal counterexample in isolation.
//!
//! # Writing a property
//!
//! ```
//! use ev8_util::prop::{check, Gen};
//! use ev8_util::{prop_assert, prop_assert_eq};
//!
//! fn reverse_is_involutive(g: &mut Gen) -> Result<(), String> {
//!     let xs = g.vec(0..50, |g| g.u32());
//!     let mut twice = xs.clone();
//!     twice.reverse();
//!     twice.reverse();
//!     prop_assert_eq!(&twice, &xs);
//!     prop_assert!(twice.len() == xs.len(), "length changed: {}", twice.len());
//!     Ok(())
//! }
//!
//! check("reverse_is_involutive", 64, reverse_is_involutive);
//! ```
//!
//! # Reproducing a reported failure
//!
//! A failure panic looks like:
//!
//! ```text
//! property 'partial_never_writes_more_than_total' failed (case 17 of 64)
//!   case seed: 0x9a4b...  scale: 0.25
//!   error: partial 31+9 vs total 30+9
//! reproduce: EV8_PROP_CASE_SEED=0x9a4b... EV8_PROP_SCALE=0.25 cargo test <test name>
//! ```
//!
//! Running the suite with those two environment variables set re-executes
//! exactly that one (shrunken) case.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::{mix, DefaultRng, Rng, SampleRange};

/// The fixed base seed: deterministic across runs unless overridden via
/// `EV8_PROP_SEED`.
pub const DEFAULT_BASE_SEED: u64 = 0xE58_BAD5_EED0_0001;

/// The size scales tried while shrinking, largest first.
const SHRINK_SCALES: &[f64] = &[0.5, 0.25, 0.1, 0.05, 0.02];

/// A seeded case generator: a deterministic RNG plus the current size
/// scale used by shrinking.
pub struct Gen {
    rng: DefaultRng,
    scale: f64,
}

impl Gen {
    /// A generator for one case seed at the given size scale (1.0 = full
    /// size).
    pub fn new(case_seed: u64, scale: f64) -> Self {
        Gen {
            rng: DefaultRng::seed_from_u64(case_seed),
            scale: scale.clamp(0.0, 1.0),
        }
    }

    /// The current shrink scale in `(0, 1]`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// An arbitrary `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// An arbitrary `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u64() as u32
    }

    /// An arbitrary `u16`.
    pub fn u16(&mut self) -> u16 {
        self.rng.next_u64() as u16
    }

    /// An arbitrary `u8`.
    pub fn u8(&mut self) -> u8 {
        self.rng.next_u64() as u8
    }

    /// An arbitrary `u128`.
    pub fn u128(&mut self) -> u128 {
        ((self.rng.next_u64() as u128) << 64) | self.rng.next_u64() as u128
    }

    /// A fair boolean.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.gen_f64()
    }

    /// A uniform draw from `range` (integers or floats, half-open or
    /// inclusive). Not affected by the shrink scale — use it for
    /// *parameters*; use [`Gen::len`]/[`Gen::vec`] for *sizes*.
    pub fn range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.rng.gen_range(range)
    }

    /// One element of a fixed choice set.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn choose<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        assert!(!choices.is_empty(), "choose from an empty slice");
        &choices[self.range(0..choices.len())]
    }

    /// A collection length drawn from `lo..hi`, scaled down while
    /// shrinking (never below `lo`, and at least 1 when `lo == 0` would
    /// make the scaled span empty with `hi > 1`).
    pub fn len(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty length range");
        let span = range.end - range.start - 1;
        let scaled = ((span as f64) * self.scale).ceil() as usize;
        if scaled == 0 {
            range.start
        } else {
            self.range(range.start..=range.start + scaled)
        }
    }

    /// A vector whose length is drawn from `len_range` (scaled while
    /// shrinking) and whose elements come from `f`.
    pub fn vec<T>(
        &mut self,
        len_range: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.len(len_range);
        (0..n).map(|_| f(self)).collect()
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn base_seed() -> u64 {
    std::env::var("EV8_PROP_SEED")
        .ok()
        .and_then(|s| parse_u64(&s))
        .unwrap_or(DEFAULT_BASE_SEED)
}

/// The seed of case `index` under `base`: statistically independent
/// across both arguments.
pub fn case_seed(base: u64, index: u64) -> u64 {
    mix(base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs one property case, converting panics inside `f` into `Err`.
fn run_case(
    f: &(impl Fn(&mut Gen) -> Result<(), String> + std::panic::RefUnwindSafe),
    seed: u64,
    scale: f64,
) -> Result<(), String> {
    let mut g = Gen::new(seed, scale);
    match catch_unwind(AssertUnwindSafe(|| f(&mut g))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".to_owned());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Checks `property` over `cases` deterministically generated inputs.
///
/// On failure, shrinks (by size scale), then panics with the case seed,
/// scale and error of the smallest failing case, plus the environment
/// variables that reproduce it.
///
/// Set `EV8_PROP_CASE_SEED` (and optionally `EV8_PROP_SCALE`) to run
/// exactly one reported case instead of the whole sweep.
///
/// # Panics
///
/// Panics iff the property fails (that is the test-failure mechanism).
pub fn check(
    name: &str,
    cases: u64,
    property: impl Fn(&mut Gen) -> Result<(), String> + std::panic::RefUnwindSafe,
) {
    // Reproduction mode: exactly one pinned case.
    if let Some(seed) = std::env::var("EV8_PROP_CASE_SEED")
        .ok()
        .and_then(|s| parse_u64(&s))
    {
        let scale = std::env::var("EV8_PROP_SCALE")
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .unwrap_or(1.0);
        if let Err(e) = run_case(&property, seed, scale) {
            panic!(
                "property '{name}' failed on pinned case\n  \
                 case seed: {seed:#018x}  scale: {scale}\n  error: {e}"
            );
        }
        return;
    }

    let base = base_seed();
    for i in 0..cases {
        let seed = case_seed(base, i);
        let Err(first_error) = run_case(&property, seed, 1.0) else {
            continue;
        };

        // Shrinking-lite: same seed, smaller size scales; keep the
        // smallest scale that still fails.
        let mut best_scale = 1.0;
        let mut best_error = first_error;
        for &scale in SHRINK_SCALES.iter().rev() {
            // Try smallest first; the first (smallest) failing scale wins.
            if let Err(e) = run_case(&property, seed, scale) {
                best_scale = scale;
                best_error = e;
                break;
            }
        }

        panic!(
            "property '{name}' failed (case {i} of {cases})\n  \
             case seed: {seed:#018x}  scale: {best_scale}\n  \
             error: {best_error}\n\
             reproduce: EV8_PROP_CASE_SEED={seed:#x} EV8_PROP_SCALE={best_scale} cargo test {name}"
        );
    }
}

/// Asserts a condition inside a property, returning `Err` (not panicking)
/// so the harness can shrink and report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            ));
        }
    }};
}

/// Asserts inequality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                a,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        // Count cases via an external cell; the closure must stay Fn.
        let counter = std::sync::atomic::AtomicU64::new(0);
        check("always_passes", 32, |g| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let _ = g.u64();
            Ok(())
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 32);
    }

    #[test]
    fn case_generation_is_deterministic() {
        let draw = |i: u64| {
            let mut g = Gen::new(case_seed(DEFAULT_BASE_SEED, i), 1.0);
            (g.u64(), g.vec(0..20, |g| g.u8()))
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3).0, draw(4).0);
    }

    #[test]
    fn failure_reports_seed_and_reproduces() {
        let failing = |g: &mut Gen| -> Result<(), String> {
            let v = g.vec(0..100, |g| g.u32());
            prop_assert!(v.len() < 40, "vector too long: {}", v.len());
            Ok(())
        };
        let result = catch_unwind(AssertUnwindSafe(|| check("long_vec", 64, failing)));
        let msg = match result {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string panic payload"),
        };
        assert!(msg.contains("case seed: 0x"), "{msg}");
        assert!(msg.contains("EV8_PROP_CASE_SEED="), "{msg}");
        assert!(msg.contains("vector too long"), "{msg}");

        // The reported seed must actually reproduce the failure at the
        // reported scale.
        let seed_hex = msg
            .split("case seed: ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .expect("seed in message");
        let scale: f64 = msg
            .split("scale: ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("scale in message");
        let seed = parse_u64(seed_hex).expect("seed parses");
        assert!(
            run_case(&failing, seed, scale).is_err(),
            "seed must reproduce"
        );
    }

    #[test]
    fn shrinking_reduces_scale_when_possible() {
        // Fails whenever the drawn vector is non-tiny; small scales pass,
        // so the reported scale must be < 1.0... actually the smallest
        // failing scale. Here anything above ~8 elements fails, so scale
        // 0.02 (max len 2 of 0..100) passes and shrink settles above it.
        let failing = |g: &mut Gen| -> Result<(), String> {
            let v = g.vec(0..100, |g| g.u8());
            prop_assert!(v.len() <= 8, "len {}", v.len());
            Ok(())
        };
        let msg = match catch_unwind(AssertUnwindSafe(|| check("shrink", 64, failing))) {
            Ok(()) => panic!("property should have failed"),
            Err(p) => *p.downcast::<String>().expect("string payload"),
        };
        let scale: f64 = msg
            .split("scale: ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("scale in message");
        assert!(scale < 1.0, "expected shrinking to engage: {msg}");
    }

    #[test]
    fn panics_inside_properties_are_reported_with_seed() {
        let msg = match catch_unwind(AssertUnwindSafe(|| {
            check("panicky", 8, |g| {
                let v = g.range(0u32..10);
                assert!(v < 100, "impossible");
                if v < 100 {
                    // Always panics via an inner assert on some case.
                    assert_eq!(v, 12345, "inner panic");
                }
                Ok(())
            })
        })) {
            Ok(()) => panic!("should have failed"),
            Err(p) => *p.downcast::<String>().expect("string payload"),
        };
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("case seed"), "{msg}");
    }

    #[test]
    fn scaled_lengths_respect_bounds() {
        for &scale in &[1.0, 0.5, 0.1, 0.02] {
            let mut g = Gen::new(99, scale);
            for _ in 0..200 {
                let n = g.len(5..50);
                assert!((5..50).contains(&n), "scale {scale}: len {n}");
            }
            let mut g = Gen::new(7, scale);
            let n = g.len(1..2);
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn parse_u64_accepts_hex_and_decimal() {
        assert_eq!(parse_u64("0x10"), Some(16));
        assert_eq!(parse_u64("0X10"), Some(16));
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64(" 7 "), Some(7));
        assert_eq!(parse_u64("zzz"), None);
    }
}
