//! Zero-dependency support library for the EV8 reproduction workspace.
//!
//! Branch-predictor evaluation lives and dies on bit-exact, reproducible
//! simulation, and the workspace must build and test **hermetically** —
//! no network, no registry cache, no external crates. This crate provides
//! the small, purpose-built replacements for what external crates used to
//! supply:
//!
//! * [`rng`] — a seeded SplitMix64 / xoshiro256\*\* random number
//!   generator with a minimal [`rng::Rng`] trait (replaces `rand`).
//! * [`bytebuf`] — a growable little-endian byte writer and a cursor
//!   reader over byte slices (replaces `bytes`).
//! * [`json`] — a minimal JSON value writer and [`json::ToJson`] trait
//!   (replaces `serde` for the workspace's export needs).
//! * [`prop`] — a deterministic property-testing mini-harness with seeded
//!   case generation, shrinking-lite and failure-seed reporting (replaces
//!   `proptest`).
//! * [`bench`] — a lightweight `std::time::Instant`-based benchmark
//!   harness for `harness = false` bench targets (replaces `criterion`).
//! * [`crc`] — table-driven CRC-32 (IEEE) checksums for the on-disk
//!   corpus format (replaces `crc32fast`).
//!
//! Everything here is plain `std`; the crate forbids `unsafe` and has no
//! dependencies, so `cargo build`/`test`/`bench` succeed with the network
//! disabled and an empty cargo registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod bytebuf;
pub mod crc;
pub mod json;
pub mod prop;
pub mod rng;
