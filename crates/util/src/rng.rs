//! Seeded, deterministic random number generation.
//!
//! Two classic generators, both tiny and portable:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. Used for seeding
//!   and for deriving independent case seeds in the property harness.
//! * [`Xoshiro256StarStar`] — Blackman/Vigna's xoshiro256\*\*, the
//!   workspace's general-purpose generator ([`DefaultRng`]).
//!
//! The [`Rng`] trait mirrors the small slice of the `rand` API the
//! workspace actually uses: raw 64-bit draws, uniform floats, biased
//! booleans and uniform integer/float ranges. All draws are pure
//! functions of the seed, so any trace, workload or property-test case is
//! reproducible from a single `u64`.
//!
//! # Example
//!
//! ```
//! use ev8_util::rng::{DefaultRng, Rng};
//!
//! let mut a = DefaultRng::seed_from_u64(42);
//! let mut b = DefaultRng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(10u32..20);
//! assert!((10..20).contains(&x));
//! ```

use std::ops::{Range, RangeInclusive};

/// The workspace's default generator (xoshiro256\*\*).
pub type DefaultRng = Xoshiro256StarStar;

/// SplitMix64: a fast 64-bit mixing generator.
///
/// Primarily a seeder (it equidistributes any 64-bit seed into full
/// 64-bit states) and a cheap way to derive independent streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }
}

/// The SplitMix64 finalizer: a strong 64-bit mix of its input.
///
/// Useful on its own for deriving statistically independent seeds from
/// structured inputs (e.g. `mix(base_seed ^ case_index)`).
pub const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\*: Blackman/Vigna's all-purpose 256-bit-state generator.
///
/// Passes BigCrush; not cryptographic (nothing here needs to be).
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64, as the
    /// xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// The minimal random-draw interface the workspace uses.
///
/// Everything derives from [`Rng::next_u64`]; the provided methods give
/// uniform floats in `[0, 1)`, biased booleans, and uniform ranges.
pub trait Rng {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // Still consume a draw so the stream advances uniformly.
            self.next_u64();
            return true;
        }
        if p <= 0.0 {
            self.next_u64();
            return false;
        }
        self.gen_f64() < p
    }

    /// A uniform draw from `range` (half-open or inclusive integer
    /// ranges, half-open float ranges).
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw in `[0, bound)` via Lemire's widening-multiply
/// rejection method. `bound == 0` means the full 64-bit range.
fn uniform_below(rng: &mut (impl Rng + ?Sized), bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound && low < bound.wrapping_neg() {
            return (m >> 64) as u64;
        }
        // Exact acceptance test (rarely reached).
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                // span == 0 encodes the full 64-bit domain.
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(uniform_below(rng, span.wrapping_add(1)) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "empty or non-finite range in gen_range"
        );
        let u = rng.gen_f64();
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "empty or non-finite range in gen_range"
        );
        lo + rng.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds() {
        let mut a = DefaultRng::seed_from_u64(7);
        let mut b = DefaultRng::seed_from_u64(7);
        let mut c = DefaultRng::seed_from_u64(8);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DefaultRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = DefaultRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_bias_respected() {
        let mut r = DefaultRng::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(2.0));
        assert!(!r.gen_bool(-1.0));
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut r = DefaultRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 reached");
        for _ in 0..1000 {
            let v = r.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
            let s = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut r = DefaultRng::seed_from_u64(13);
        // span wraps to 0 -> full 64-bit domain; must not panic or loop.
        let v = r.gen_range(0u64..=u64::MAX);
        let _ = v;
        let w = r.gen_range(u8::MIN..=u8::MAX);
        let _ = w;
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = DefaultRng::seed_from_u64(17);
        for _ in 0..10_000 {
            let x = r.gen_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&x), "{x}");
            let y = r.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&y), "{y}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        DefaultRng::seed_from_u64(1).gen_range(5u32..5);
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut r = DefaultRng::seed_from_u64(23);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[uniform_below(&mut r, 7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "bucket {i} count {c} far from uniform"
            );
        }
    }
}
