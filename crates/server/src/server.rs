//! The supervised, overload-tolerant simulation server.
//!
//! Architecture (all std, no async runtime):
//!
//! * **Accept loop** — the thread calling [`Server::serve`] polls every
//!   listener nonblockingly, applies admission control, and pushes
//!   admitted connections onto per-worker queues (shortest queue wins).
//!   Refused connections get a `RETRY_AFTER` frame whose delay comes
//!   from the supervision policy's seeded backoff — a thundering herd of
//!   rejected clients restaggers deterministically.
//! * **Worker pool** — `config.workers` threads under `thread::scope`,
//!   each owning a queue; an idle worker steals from its siblings, so
//!   one slow session cannot strand queued work behind it.
//! * **Per-session supervision** — reuses [`RunPolicy`] semantics: the
//!   socket read timeout is the stall watchdog (a slowloris client
//!   surfaces as a timed-out read and is reaped with a `CLOSED`
//!   frame), transient accept failures back off via
//!   [`ev8_sim::sweep::backoff_delay`], and every session runs under the
//!   cumulative [`SessionBudget`] from the trace layer.
//! * **Degraded mode** — above [`ServerConfig::degrade_sessions`]
//!   concurrent sessions the server sheds per-branch attribution
//!   (observability) before it sheds predictions, matching the
//!   shed-work-not-correctness ordering of the sweep runner's
//!   [`FailureMode::Degraded`](ev8_sim::sweep::FailureMode).
//! * **Graceful drain** — [`ServerHandle::shutdown`] stops the accept
//!   loop; queued-but-unstarted sessions are closed immediately with
//!   `CLOSED{DRAINING}`, in-flight sessions run on until the drain
//!   deadline, then are time-boxed closed the same way. [`Server::serve`]
//!   returns only after every worker has exited.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use ev8_sim::session::SessionSim;
use ev8_sim::sweep::{self, backoff_delay, RunPolicy};
use ev8_trace::frame::{write_frame, FrameReader};
use ev8_trace::{BranchRecord, Pc, SessionBudget, TraceError, DEFAULT_FRAME_CAP};
use ev8_workloads::corpus::{CorpusStore, StoreError};
use ev8_workloads::spec95;

use crate::conn::Conn;
use crate::error::ServerError;
use crate::proto::{self, code, kind, CloseInfo, ServerStats, Welcome};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads serving sessions.
    pub workers: usize,
    /// Admission cap: active + queued sessions beyond this are refused
    /// with `RETRY_AFTER`.
    pub max_sessions: usize,
    /// Per-frame payload cap (bytes), enforced before allocation.
    pub frame_cap: u64,
    /// Cumulative per-session byte budget.
    pub session_bytes: u64,
    /// Cumulative per-session record budget.
    pub session_records: u64,
    /// Stall watchdog: a session whose next frame does not arrive within
    /// this budget is reaped.
    pub stall_timeout: Duration,
    /// Drain window after [`ServerHandle::shutdown`]: in-flight sessions
    /// past this deadline are time-boxed closed.
    pub drain_timeout: Duration,
    /// Active-session threshold above which attribution is shed
    /// (degraded mode, observability before predictions).
    pub degrade_sessions: usize,
    /// Supervision policy reused from the sweep runner: `backoff_base`
    /// and `seed` drive `RETRY_AFTER` delays and transient-accept
    /// backoff.
    pub supervision: RunPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = sweep::default_workers();
        ServerConfig {
            workers,
            max_sessions: 64,
            frame_cap: DEFAULT_FRAME_CAP,
            session_bytes: 256 << 20,
            session_records: 1 << 24,
            stall_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(5),
            degrade_sessions: workers * 2,
            supervision: RunPolicy::default().degraded(),
        }
    }
}

/// Atomic supervision counters shared by every thread of one server.
#[derive(Default)]
struct StatsInner {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    stalled: AtomicU64,
    failed: AtomicU64,
    drained: AtomicU64,
    active: AtomicU64,
    traces: AtomicU64,
    records: AtomicU64,
    shed: AtomicU64,
}

/// One worker's session queue plus its wakeup signal.
struct WorkerQueue {
    q: Mutex<VecDeque<Conn>>,
    cv: Condvar,
}

/// State shared between the accept loop, workers, and handles.
struct Shared {
    config: ServerConfig,
    stats: StatsInner,
    shutdown: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
    queues: Vec<WorkerQueue>,
    /// On-disk corpus served to `BEGIN_WORKLOAD` sessions; absent unless
    /// [`Server::attach_corpus`] was called (the config struct is `Copy`,
    /// so the store lives here).
    corpus: OnceLock<Arc<CorpusStore>>,
}

impl Shared {
    fn queued(&self) -> u64 {
        self.queues
            .iter()
            .map(|w| w.q.lock().expect("queue lock").len() as u64)
            .sum()
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            sessions_accepted: self.stats.accepted.load(Ordering::Relaxed),
            sessions_rejected: self.stats.rejected.load(Ordering::Relaxed),
            sessions_completed: self.stats.completed.load(Ordering::Relaxed),
            sessions_stalled: self.stats.stalled.load(Ordering::Relaxed),
            sessions_failed: self.stats.failed.load(Ordering::Relaxed),
            sessions_drained: self.stats.drained.load(Ordering::Relaxed),
            sessions_active: self.stats.active.load(Ordering::Relaxed),
            sessions_queued: self.queued(),
            traces_simulated: self.stats.traces.load(Ordering::Relaxed),
            records_simulated: self.stats.records.load(Ordering::Relaxed),
            attribution_shed: self.stats.shed.load(Ordering::Relaxed),
            abandoned_jobs: sweep::abandoned_jobs(),
            abandoned_jobs_finished_late: sweep::abandoned_jobs_finished_late(),
        }
    }

    fn drain_deadline(&self) -> Option<Instant> {
        *self.drain_deadline.lock().expect("drain lock")
    }
}

/// A bound listener endpoint.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Control handle for a running server: shut it down or snapshot its
/// stats from any thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begins graceful drain: stop accepting, close queued sessions,
    /// let in-flight sessions finish or hit the drain deadline.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }
}

/// The prediction service. Bind one or more listeners, then call
/// [`Server::serve`] (blocking); control it through a [`ServerHandle`]
/// taken beforehand.
pub struct Server {
    shared: Arc<Shared>,
    listeners: Vec<Listener>,
}

impl Server {
    /// Creates a server with the given configuration (no listeners yet).
    pub fn new(config: ServerConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let queues = (0..config.workers)
            .map(|_| WorkerQueue {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect();
        Server {
            shared: Arc::new(Shared {
                config,
                stats: StatsInner::default(),
                shutdown: AtomicBool::new(false),
                drain_deadline: Mutex::new(None),
                queues,
                corpus: OnceLock::new(),
            }),
            listeners: Vec::new(),
        }
    }

    /// Binds a TCP listener; returns the bound address (use port 0 to
    /// let the OS pick).
    pub fn bind_tcp(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let l = TcpListener::bind(addr)?;
        let local = l.local_addr()?;
        self.listeners.push(Listener::Tcp(l));
        Ok(local)
    }

    /// Binds a Unix-domain socket listener, replacing any stale socket
    /// file at `path`. The file is removed again when the server drops.
    #[cfg(unix)]
    pub fn bind_unix(&mut self, path: &Path) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let l = UnixListener::bind(path)?;
        self.listeners.push(Listener::Unix(l, path.to_path_buf()));
        Ok(())
    }

    /// Attaches an on-disk corpus store: sessions may then `BEGIN_WORKLOAD`
    /// by catalog name instead of streaming their own records. At most one
    /// store can be attached per server; later calls are ignored.
    pub fn attach_corpus(&mut self, store: Arc<CorpusStore>) {
        let _ = self.shared.corpus.set(store);
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop and worker pool until a handle calls
    /// [`ServerHandle::shutdown`] and the drain completes. Returns the
    /// final stats snapshot.
    ///
    /// # Panics
    ///
    /// Panics if no listener was bound.
    pub fn serve(self) -> ServerStats {
        assert!(!self.listeners.is_empty(), "bind a listener before serving");
        for l in &self.listeners {
            l.set_nonblocking().expect("listener nonblocking mode");
        }
        let shared = &self.shared;
        thread::scope(|s| {
            for me in 0..shared.config.workers {
                s.spawn(move || worker_loop(me, shared));
            }
            accept_loop(&self.listeners, shared);
        });
        shared.snapshot()
    }
}

/// Polls listeners, admits or refuses connections, and on shutdown arms
/// the drain deadline and wakes every worker.
fn accept_loop(listeners: &[Listener], shared: &Shared) {
    let cfg = &shared.config;
    let mut rejected_seq = 0usize;
    let mut accept_attempt = 1u32;
    while !shared.shutdown.load(Ordering::Acquire) {
        let mut progress = false;
        for l in listeners {
            match l.accept() {
                Ok(conn) => {
                    progress = true;
                    accept_attempt = 1;
                    admit(conn, shared, &mut rejected_seq);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) => {}
                Err(_) => {
                    // Transient accept failure (fd exhaustion, aborted
                    // handshake): back off with the supervision policy's
                    // seeded schedule instead of spinning.
                    thread::sleep(backoff_delay(
                        cfg.supervision.backoff_base,
                        cfg.supervision.seed,
                        0,
                        accept_attempt,
                    ));
                    accept_attempt = accept_attempt.saturating_add(1).min(8);
                }
            }
        }
        if !progress {
            thread::sleep(Duration::from_millis(2));
        }
    }
    *shared.drain_deadline.lock().expect("drain lock") = Some(Instant::now() + cfg.drain_timeout);
    for w in &shared.queues {
        w.cv.notify_all();
    }
}

/// Admission control: refuse with `RETRY_AFTER` past the session cap,
/// otherwise enqueue on the shortest worker queue.
fn admit(conn: Conn, shared: &Shared, rejected_seq: &mut usize) {
    let cfg = &shared.config;
    let load = shared.stats.active.load(Ordering::Relaxed) + shared.queued();
    if load >= cfg.max_sessions as u64 {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        // Seeded-jitter delay: concurrent rejects spread out instead of
        // hammering back simultaneously.
        let delay = backoff_delay(
            cfg.supervision.backoff_base,
            cfg.supervision.seed,
            *rejected_seq,
            1,
        );
        *rejected_seq = rejected_seq.wrapping_add(1);
        let mut payload = Vec::new();
        proto::encode_retry_after(delay.as_millis() as u64, &mut payload);
        let mut w = conn;
        let _ = send_frame(&mut w, kind::RETRY_AFTER, &payload);
        return;
    }
    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
    let shortest = shared
        .queues
        .iter()
        .min_by_key(|w| w.q.lock().expect("queue lock").len())
        .expect("at least one worker");
    shortest.q.lock().expect("queue lock").push_back(conn);
    shortest.cv.notify_one();
}

/// Pops the worker's own queue, stealing from siblings when empty.
fn pop_or_steal(me: usize, shared: &Shared) -> Option<Conn> {
    let own = &shared.queues[me];
    if let Some(c) = own.q.lock().expect("queue lock").pop_front() {
        return Some(c);
    }
    for (i, other) in shared.queues.iter().enumerate() {
        if i == me {
            continue;
        }
        // Steal from the back: the front entry is the one its owner
        // will reach first.
        if let Some(c) = other.q.lock().expect("queue lock").pop_back() {
            return Some(c);
        }
    }
    None
}

/// Worker body: serve sessions until shutdown has drained every queue.
fn worker_loop(me: usize, shared: &Shared) {
    loop {
        match pop_or_steal(me, shared) {
            Some(conn) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    // Queued but never started: close immediately.
                    refuse_draining(conn, shared);
                    continue;
                }
                shared.stats.active.fetch_add(1, Ordering::Relaxed);
                run_session(conn, shared);
                shared.stats.active.fetch_sub(1, Ordering::Relaxed);
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let own = &shared.queues[me];
                let guard = own.q.lock().expect("queue lock");
                // Re-check under the lock, then sleep until signalled
                // (bounded, so shutdown is never missed).
                if guard.is_empty() {
                    let _ = own
                        .cv
                        .wait_timeout(guard, Duration::from_millis(20))
                        .expect("queue lock");
                }
            }
        }
    }
}

/// Sends `CLOSED{DRAINING}` to a session that never started.
fn refuse_draining(conn: Conn, shared: &Shared) {
    shared.stats.drained.fetch_add(1, Ordering::Relaxed);
    let mut payload = Vec::new();
    proto::encode_close(
        &CloseInfo {
            code: code::DRAINING,
            offset: 0,
            message: "server draining".to_string(),
        },
        &mut payload,
    );
    let mut w = conn;
    let _ = send_frame(&mut w, kind::CLOSED, &payload);
}

/// How a session ended, for the supervision counters.
enum SessionEnd {
    /// Orderly `BYE`.
    Completed,
    /// Reaped by the stall watchdog.
    Stalled,
    /// Protocol/trace/transport error or abrupt disconnect.
    Failed,
    /// Closed by the drain deadline or shutdown between traces.
    Drained,
}

/// Serves one session end to end and records its outcome.
fn run_session(conn: Conn, shared: &Shared) {
    let end = session_inner(conn, shared);
    let counter = match end {
        SessionEnd::Completed => &shared.stats.completed,
        SessionEnd::Stalled => &shared.stats.stalled,
        SessionEnd::Failed => &shared.stats.failed,
        SessionEnd::Drained => &shared.stats.drained,
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// The session state machine. Every exit path sends a terminal frame on
/// a best-effort basis; transport failures while reporting are ignored
/// (the peer is gone).
fn session_inner(conn: Conn, shared: &Shared) -> SessionEnd {
    let cfg = &shared.config;
    let _ = conn.set_nodelay();
    if conn.set_read_timeout(Some(cfg.stall_timeout)).is_err() {
        return SessionEnd::Failed;
    }
    let mut write = match conn.try_clone() {
        Ok(w) => w,
        Err(_) => return SessionEnd::Failed,
    };
    let budget = SessionBudget::new(cfg.frame_cap, cfg.session_bytes, cfg.session_records);
    let mut reader = FrameReader::new(conn, budget);
    let mut payload: Vec<u8> = Vec::new();
    let mut out: Vec<u8> = Vec::new();

    // --- Handshake ---
    let header = match reader.read_frame(&mut payload) {
        Ok(Some(h)) => h,
        Ok(None) => return SessionEnd::Failed,
        Err(e) => return close_on_trace_error(&mut write, e),
    };
    if header.kind != kind::HELLO {
        return close_with(
            &mut write,
            code::PROTOCOL,
            reader.offset(),
            "expected HELLO",
        );
    }
    let base = reader.offset() - payload.len() as u64;
    let hello = match proto::decode_hello(&payload, base) {
        Ok(h) => h,
        Err(e) => return close_on_server_error(&mut write, e),
    };
    let degraded = shared.stats.active.load(Ordering::Relaxed) > cfg.degrade_sessions as u64;
    let granted = hello.attribution && !degraded;
    if hello.attribution && !granted {
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
    }
    let mut sim = SessionSim::new(hello.spec.build(), granted);
    proto::encode_welcome(
        &Welcome {
            attribution: granted,
            predictor: sim.predictor_name().to_string(),
        },
        &mut out,
    );
    if !send_frame(&mut write, kind::WELCOME, &out) {
        return SessionEnd::Failed;
    }

    // --- Frame loop ---
    let mut in_trace = false;
    let mut cursor = Pc::default();
    let mut records: Vec<BranchRecord> = Vec::new();
    loop {
        // Drain discipline: between traces close immediately on
        // shutdown; mid-trace keep serving until the deadline.
        let shutting_down = shared.shutdown.load(Ordering::Acquire);
        if shutting_down && !in_trace {
            return close_draining(&mut write);
        }
        if let Some(deadline) = shared.drain_deadline() {
            if Instant::now() >= deadline {
                return close_draining(&mut write);
            }
        }
        // Degraded mode can begin mid-session: shed attribution, never
        // predictions.
        if sim.attribution_enabled()
            && shared.stats.active.load(Ordering::Relaxed) > cfg.degrade_sessions as u64
        {
            sim.shed_attribution();
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        }

        let header = match reader.read_frame(&mut payload) {
            Ok(Some(h)) => h,
            Ok(None) => {
                // Abrupt disconnect; mid-trace state is discarded.
                return SessionEnd::Failed;
            }
            Err(e) => {
                let stalled = matches!(&e, TraceError::Io(io) if is_stall_kind(io.kind()));
                if stalled && shared.shutdown.load(Ordering::Acquire) {
                    return close_draining(&mut write);
                }
                if stalled {
                    let _ = send_close(
                        &mut write,
                        code::STALLED,
                        reader.offset(),
                        &format!("no frame within {:?}", cfg.stall_timeout),
                    );
                    return SessionEnd::Stalled;
                }
                return close_on_trace_error(&mut write, e);
            }
        };
        let base = reader.offset() - payload.len() as u64;
        match header.kind {
            kind::BEGIN if !in_trace => {
                let begin = match proto::decode_begin(&payload, base) {
                    Ok(b) => b,
                    Err(e) => return close_on_server_error(&mut write, e),
                };
                sim.begin(&begin.name, begin.instructions);
                cursor = Pc::default();
                in_trace = true;
            }
            kind::BEGIN_WORKLOAD if !in_trace => {
                let begin = match proto::decode_begin_workload(&payload, base) {
                    Ok(b) => b,
                    Err(e) => return close_on_server_error(&mut write, e),
                };
                // Resolve the name against spec95 (for the generator
                // identity) and the catalog (for the file). Either miss is
                // the same client-visible condition: no such workload here.
                let entry = shared.corpus.get().and_then(|store| {
                    let spec = spec95::benchmark(&begin.name)?;
                    store
                        .find_by_ppm(&spec, u64::from(begin.scale_ppm))
                        .cloned()
                        .map(|entry| (Arc::clone(store), entry))
                });
                let (store, entry) = match entry {
                    Some(found) => found,
                    None => {
                        return close_with(
                            &mut write,
                            code::UNKNOWN_WORKLOAD,
                            base,
                            "no corpus entry for that workload",
                        )
                    }
                };
                let mut corpus_reader = match store.open_reader(&entry) {
                    Ok(r) => r,
                    Err(StoreError::Trace(e)) => return close_on_trace_error(&mut write, e),
                    Err(e) => return close_with(&mut write, code::INTERNAL, base, &e.to_string()),
                };
                // Stream the corpus chunk by chunk through the session
                // simulator — same per-record path as RECORDS frames, so
                // the summary is bit-identical to a client-streamed run of
                // the same trace on a fresh predictor.
                sim.begin(corpus_reader.name(), corpus_reader.instruction_count());
                loop {
                    match corpus_reader.next_block() {
                        Ok(Some(block)) => {
                            shared
                                .stats
                                .records
                                .fetch_add(block.len() as u64, Ordering::Relaxed);
                            block.for_each(|rec| sim.feed(rec));
                        }
                        Ok(None) => break,
                        Err(e) => return close_on_trace_error(&mut write, e),
                    }
                }
                let summary = sim.finish();
                shared.stats.traces.fetch_add(1, Ordering::Relaxed);
                proto::encode_summary(&summary, &mut out);
                if !send_frame(&mut write, kind::SUMMARY, &out) {
                    return SessionEnd::Failed;
                }
            }
            kind::RECORDS if in_trace => {
                records.clear();
                if let Err(e) = ev8_trace::frame::decode_records(
                    &payload,
                    &mut cursor,
                    reader.budget_mut(),
                    base,
                    &mut records,
                ) {
                    return close_on_trace_error(&mut write, e);
                }
                shared
                    .stats
                    .records
                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                sim.feed_all(&records);
            }
            kind::END if in_trace => {
                let summary = sim.finish();
                in_trace = false;
                shared.stats.traces.fetch_add(1, Ordering::Relaxed);
                proto::encode_summary(&summary, &mut out);
                if !send_frame(&mut write, kind::SUMMARY, &out) {
                    return SessionEnd::Failed;
                }
            }
            kind::STATS_REQ => {
                proto::encode_stats(&shared.snapshot(), &mut out);
                if !send_frame(&mut write, kind::STATS, &out) {
                    return SessionEnd::Failed;
                }
            }
            kind::BYE => {
                let _ = send_close(&mut write, code::OK, reader.offset(), "goodbye");
                return SessionEnd::Completed;
            }
            _ => {
                return close_with(
                    &mut write,
                    code::PROTOCOL,
                    base,
                    "unknown or out-of-order frame",
                );
            }
        }
    }
}

fn is_stall_kind(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Maps a trace-layer error onto a close code and reports it.
fn close_on_trace_error(write: &mut Conn, e: TraceError) -> SessionEnd {
    let (close_code, offset) = match &e {
        TraceError::FrameTooLarge { offset, .. } => (code::FRAME_TOO_LARGE, *offset),
        TraceError::BudgetExceeded { offset, .. } => (code::BUDGET, *offset),
        TraceError::Corrupt { offset, .. } => (code::TRACE, *offset),
        TraceError::ChecksumMismatch { offset, .. } => (code::TRACE, *offset),
        TraceError::UnexpectedEof { offset } => (code::TRACE, *offset),
        TraceError::Io(_) => (code::INTERNAL, 0),
        _ => (code::TRACE, 0),
    };
    let _ = send_close(write, close_code, offset, &e.to_string());
    SessionEnd::Failed
}

/// Reports a protocol-layer error and fails the session.
fn close_on_server_error(write: &mut Conn, e: ServerError) -> SessionEnd {
    let (close_code, offset) = match e {
        ServerError::Protocol { offset, .. } => (code::PROTOCOL, offset),
        ServerError::Trace(t) => return close_on_trace_error(write, t),
        _ => (code::INTERNAL, 0),
    };
    let _ = send_close(write, close_code, offset, &e.to_string());
    SessionEnd::Failed
}

fn close_draining(write: &mut Conn) -> SessionEnd {
    let _ = send_close(write, code::DRAINING, 0, "server draining");
    SessionEnd::Drained
}

fn close_with(write: &mut Conn, c: u16, offset: u64, message: &str) -> SessionEnd {
    let _ = send_close(write, c, offset, message);
    SessionEnd::Failed
}

/// Sends an `ERROR` frame followed by `CLOSED` (or just `CLOSED` for
/// orderly/drain codes) — the `JobFailure`-style machine-readable close.
fn send_close(write: &mut Conn, c: u16, offset: u64, message: &str) -> bool {
    let info = CloseInfo {
        code: c,
        offset,
        message: message.to_string(),
    };
    let mut payload = Vec::new();
    proto::encode_close(&info, &mut payload);
    if !matches!(c, code::OK | code::DRAINING) && !send_frame(write, kind::ERROR, &payload) {
        return false;
    }
    send_frame(write, kind::CLOSED, &payload)
}

/// Writes one frame as a single buffered write; returns success.
fn send_frame(write: &mut Conn, frame_kind: u8, payload: &[u8]) -> bool {
    let mut buf = Vec::with_capacity(ev8_trace::frame::FRAME_HEADER_LEN + payload.len());
    if write_frame(&mut buf, frame_kind, payload).is_err() {
        return false;
    }
    write.write_all(&buf).is_ok() && write.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServerConfig::default();
        assert!(c.workers >= 1);
        assert!(c.max_sessions >= c.workers);
        assert_eq!(c.frame_cap, DEFAULT_FRAME_CAP);
        assert!(c.degrade_sessions >= c.workers);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Server::new(ServerConfig {
            workers: 0,
            ..ServerConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "bind a listener")]
    fn serve_without_listener_panics() {
        Server::new(ServerConfig::default()).serve();
    }

    #[test]
    fn stall_kind_classification() {
        assert!(is_stall_kind(io::ErrorKind::WouldBlock));
        assert!(is_stall_kind(io::ErrorKind::TimedOut));
        assert!(!is_stall_kind(io::ErrorKind::UnexpectedEof));
    }
}
