//! Blocking client for the prediction service, used by the integration
//! tests, the chaos suite, the load bench and the CI smoke script.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;
use std::thread;
use std::time::Duration;

use ev8_sim::session::SessionSummary;
use ev8_trace::frame::{encode_records, write_frame, FrameReader};
use ev8_trace::{Pc, SessionBudget, Trace};
use ev8_util::bytebuf::ByteBuf;

use crate::conn::Conn;
use crate::error::ServerError;
use crate::proto::{self, code, kind, Hello, PredictorSpec, ServerStats, Welcome};

/// Default number of records per `RECORDS` frame.
pub const DEFAULT_CHUNK: usize = 4096;

/// How long the client waits for a server response frame before giving
/// up (generous: the server may be time-slicing many sessions).
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(60);

/// A connected, welcomed session.
pub struct Client {
    write: Conn,
    reader: FrameReader<Conn>,
    payload: Vec<u8>,
    welcome: Welcome,
}

impl Client {
    /// Connects over TCP and performs the handshake.
    ///
    /// # Errors
    ///
    /// [`ServerError::Overloaded`] when admission control refused the
    /// session (carrying the server-suggested retry delay),
    /// [`ServerError::Draining`]/[`ServerError::Remote`] when the server
    /// closed it, transport errors otherwise.
    pub fn connect_tcp(
        addr: SocketAddr,
        spec: PredictorSpec,
        attribution: bool,
    ) -> Result<Client, ServerError> {
        let stream = TcpStream::connect(addr)?;
        Client::handshake(Conn::Tcp(stream), spec, attribution)
    }

    /// Connects over a Unix-domain socket and performs the handshake.
    #[cfg(unix)]
    pub fn connect_unix(
        path: &Path,
        spec: PredictorSpec,
        attribution: bool,
    ) -> Result<Client, ServerError> {
        let stream = UnixStream::connect(path)?;
        Client::handshake(Conn::Unix(stream), spec, attribution)
    }

    /// Connects over a Unix socket, sleeping out `RETRY_AFTER` responses
    /// up to `attempts` times — the polite-client loop admission control
    /// expects.
    #[cfg(unix)]
    pub fn connect_unix_retry(
        path: &Path,
        spec: PredictorSpec,
        attribution: bool,
        attempts: u32,
    ) -> Result<Client, ServerError> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Client::connect_unix(path, spec, attribution) {
                Ok(c) => return Ok(c),
                Err(ServerError::Overloaded { retry_after }) => {
                    thread::sleep(retry_after.min(Duration::from_millis(500)));
                    last = Some(ServerError::Overloaded { retry_after });
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ServerError::Overloaded {
            retry_after: Duration::from_millis(100),
        }))
    }

    fn handshake(
        conn: Conn,
        spec: PredictorSpec,
        attribution: bool,
    ) -> Result<Client, ServerError> {
        let _ = conn.set_nodelay();
        conn.set_read_timeout(Some(RESPONSE_TIMEOUT))?;
        let mut write = conn.try_clone()?;
        let mut reader = FrameReader::new(conn, SessionBudget::unlimited());
        let mut payload = Vec::new();
        let mut out = Vec::new();
        proto::encode_hello(&Hello { spec, attribution }, &mut out);
        send(&mut write, kind::HELLO, &out)?;
        let (header, base) = read_frame(&mut reader, &mut payload)?;
        match header {
            kind::WELCOME => {
                let welcome = proto::decode_welcome(&payload, base)?;
                Ok(Client {
                    write,
                    reader,
                    payload,
                    welcome,
                })
            }
            kind::RETRY_AFTER => {
                let millis = proto::decode_retry_after(&payload, base)?;
                Err(ServerError::Overloaded {
                    retry_after: Duration::from_millis(millis),
                })
            }
            kind::CLOSED | kind::ERROR => Err(remote_error(&payload, base)),
            _ => Err(ServerError::Protocol {
                what: "unexpected handshake response",
                offset: base,
            }),
        }
    }

    /// The server's handshake response (granted attribution, predictor
    /// name).
    pub fn welcome(&self) -> &Welcome {
        &self.welcome
    }

    /// Streams one trace through the session and returns its summary.
    /// Records are sent in `chunk`-sized `RECORDS` frames.
    ///
    /// If the server terminates the session mid-stream (budget
    /// exhaustion, drain, reap), the pending `ERROR`/`CLOSED` frame is
    /// surfaced as the error rather than the raw transport failure the
    /// teardown caused.
    pub fn run_trace(
        &mut self,
        trace: &Trace,
        chunk: usize,
    ) -> Result<SessionSummary, ServerError> {
        let chunk = chunk.max(1);
        let mut out = Vec::new();
        proto::encode_begin(
            &proto::Begin {
                name: trace.name().to_string(),
                instructions: trace.instruction_count(),
            },
            &mut out,
        );
        self.send_or_explain(kind::BEGIN, &out)?;
        let mut cursor = Pc::default();
        for records in trace.records().chunks(chunk) {
            let mut buf = ByteBuf::new();
            encode_records(&mut buf, records, &mut cursor);
            self.send_or_explain(kind::RECORDS, buf.as_slice())?;
        }
        self.send_or_explain(kind::END, &[])?;
        let (header, base) = read_frame(&mut self.reader, &mut self.payload)?;
        match header {
            kind::SUMMARY => proto::decode_summary(&self.payload, base),
            kind::CLOSED | kind::ERROR => Err(remote_error(&self.payload, base)),
            _ => Err(ServerError::Protocol {
                what: "expected SUMMARY",
                offset: base,
            }),
        }
    }

    /// Simulates a server-side corpus workload by name: one
    /// `BEGIN_WORKLOAD` frame replaces the whole `BEGIN`/`RECORDS`/`END`
    /// exchange, the server streams its own catalog entry, and the
    /// summary comes back exactly as for [`Client::run_trace`].
    ///
    /// `scale_ppm` is the trace scale in parts per million of the
    /// benchmark's full length (1_000_000 = the full trace); it must
    /// match a catalog entry on the server.
    ///
    /// # Errors
    ///
    /// [`ServerError::Remote`] with
    /// [`code::UNKNOWN_WORKLOAD`](crate::proto::code::UNKNOWN_WORKLOAD)
    /// when the server has no matching catalog entry; the usual
    /// transport/protocol errors otherwise.
    pub fn run_workload(
        &mut self,
        name: &str,
        scale_ppm: u32,
    ) -> Result<SessionSummary, ServerError> {
        let mut out = Vec::new();
        proto::encode_begin_workload(
            &proto::BeginWorkload {
                name: name.to_string(),
                scale_ppm,
            },
            &mut out,
        );
        self.send_or_explain(kind::BEGIN_WORKLOAD, &out)?;
        let (header, base) = read_frame(&mut self.reader, &mut self.payload)?;
        match header {
            kind::SUMMARY => proto::decode_summary(&self.payload, base),
            kind::CLOSED | kind::ERROR => Err(remote_error(&self.payload, base)),
            _ => Err(ServerError::Protocol {
                what: "expected SUMMARY",
                offset: base,
            }),
        }
    }

    /// Sends one frame; when the transport is already dead, reads the
    /// terminal `ERROR`/`CLOSED` frame the server left behind (the
    /// machine-readable *reason* it tore the session down) and returns
    /// that instead of the broken-pipe symptom.
    fn send_or_explain(&mut self, frame_kind: u8, payload: &[u8]) -> Result<(), ServerError> {
        match send(&mut self.write, frame_kind, payload) {
            Ok(()) => Ok(()),
            Err(ServerError::Io(io)) => {
                // A closed peer means its close frames (or EOF) are
                // already in our receive buffer — this read cannot
                // stall.
                if let Ok(Some(h)) = self.reader.read_frame(&mut self.payload) {
                    if matches!(h.kind, kind::ERROR | kind::CLOSED) {
                        let base = self.reader.offset() - self.payload.len() as u64;
                        return Err(remote_error(&self.payload, base));
                    }
                }
                Err(ServerError::Io(io))
            }
            Err(e) => Err(e),
        }
    }

    /// Requests a server stats snapshot.
    pub fn server_stats(&mut self) -> Result<ServerStats, ServerError> {
        send(&mut self.write, kind::STATS_REQ, &[])?;
        let (header, base) = read_frame(&mut self.reader, &mut self.payload)?;
        match header {
            kind::STATS => proto::decode_stats(&self.payload, base),
            kind::CLOSED | kind::ERROR => Err(remote_error(&self.payload, base)),
            _ => Err(ServerError::Protocol {
                what: "expected STATS",
                offset: base,
            }),
        }
    }

    /// Ends the session with an orderly `BYE`, waiting for the server's
    /// `CLOSED{OK}`.
    pub fn bye(mut self) -> Result<(), ServerError> {
        send(&mut self.write, kind::BYE, &[])?;
        let (header, base) = read_frame(&mut self.reader, &mut self.payload)?;
        match header {
            kind::CLOSED => {
                let info = proto::decode_close(&self.payload, base)?;
                if info.code == code::OK {
                    Ok(())
                } else {
                    Err(close_to_error(info))
                }
            }
            _ => Err(ServerError::Protocol {
                what: "expected CLOSED",
                offset: base,
            }),
        }
    }
}

/// Reads one frame, mapping clean EOF to a protocol error (the server
/// must always send a terminal frame first) and timed-out reads to
/// [`ServerError::Stalled`].
fn read_frame(
    reader: &mut FrameReader<Conn>,
    payload: &mut Vec<u8>,
) -> Result<(u8, u64), ServerError> {
    match reader.read_frame(payload) {
        Ok(Some(h)) => Ok((h.kind, reader.offset() - payload.len() as u64)),
        Ok(None) => Err(ServerError::Protocol {
            what: "server closed without a terminal frame",
            offset: reader.offset(),
        }),
        Err(e) => {
            let err: ServerError = e.into();
            if err.is_stall() {
                Err(ServerError::Stalled {
                    after: RESPONSE_TIMEOUT,
                })
            } else {
                Err(err)
            }
        }
    }
}

/// Maps an `ERROR`/`CLOSED` payload to the matching client-side error.
fn remote_error(payload: &[u8], base: u64) -> ServerError {
    match proto::decode_close(payload, base) {
        Ok(info) => close_to_error(info),
        Err(e) => e,
    }
}

fn close_to_error(info: proto::CloseInfo) -> ServerError {
    if info.code == code::DRAINING {
        ServerError::Draining
    } else {
        ServerError::Remote {
            code: info.code,
            message: info.message,
        }
    }
}

fn send(write: &mut Conn, frame_kind: u8, payload: &[u8]) -> Result<(), ServerError> {
    let mut buf = Vec::with_capacity(ev8_trace::frame::FRAME_HEADER_LEN + payload.len());
    write_frame(&mut buf, frame_kind, payload)?;
    write.write_all(&buf)?;
    write.flush()?;
    Ok(())
}
