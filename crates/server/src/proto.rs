//! The session protocol: frame kinds, close codes, and payload codecs.
//!
//! Every session is a frame stream (see [`ev8_trace::frame`]); this
//! module assigns meanings to the frame kinds and defines the payload
//! encodings. All multi-byte integers are little-endian and fixed-width
//! (payloads are small control structures — varint compression buys
//! nothing here; the bulky record data reuses the trace wire encoding
//! via [`ev8_trace::frame::encode_records`]).
//!
//! ```text
//! client                                server
//!   | HELLO{spec, attribution}            |
//!   |------------------------------------>|
//!   |            WELCOME{granted, name}   |   (or RETRY_AFTER / CLOSED)
//!   |<------------------------------------|
//!   | BEGIN{name, instructions}           |
//!   |------------------------------------>|
//!   | RECORDS* (wire-encoded chunks)      |
//!   |------------------------------------>|
//!   | END                                 |
//!   |------------------------------------>|
//!   |            SUMMARY{result, attrib}  |
//!   |<------------------------------------|
//!   |     ... more BEGIN/RECORDS/END ...  |
//!   | BEGIN_WORKLOAD{name, scale_ppm}     |   (server-side corpus trace;
//!   |------------------------------------>|    no RECORDS/END follow)
//!   |            SUMMARY{result, attrib}  |
//!   |<------------------------------------|
//!   | BYE                                 |
//!   |------------------------------------>|
//!   |            CLOSED{code 0}           |
//!   |<------------------------------------|
//! ```
//!
//! Malformed input never panics: every decoder returns
//! [`ServerError::Protocol`] with the session byte offset.

use ev8_predictors::observe::ConditionalBranchPredictor;
use ev8_sim::session::{ProvenanceSummary, SessionSummary};
use ev8_sim::SimResult;

use crate::error::ServerError;

/// Frame kind tags. Client-originated kinds have the high bit clear,
/// server-originated kinds have it set.
pub mod kind {
    /// Client: session handshake ([`super::Hello`]).
    pub const HELLO: u8 = 0x01;
    /// Client: start a trace ([`super::Begin`]).
    pub const BEGIN: u8 = 0x02;
    /// Client: a chunk of wire-encoded branch records.
    pub const RECORDS: u8 = 0x03;
    /// Client: end of the current trace; request the summary.
    pub const END: u8 = 0x04;
    /// Client: request a server stats snapshot.
    pub const STATS_REQ: u8 = 0x05;
    /// Client: orderly goodbye.
    pub const BYE: u8 = 0x06;
    /// Client: simulate a named server-side corpus workload
    /// ([`super::BeginWorkload`]) — no `RECORDS`/`END` follow; the server
    /// streams the catalog entry itself and replies with `SUMMARY`.
    pub const BEGIN_WORKLOAD: u8 = 0x07;
    /// Server: handshake accepted ([`super::Welcome`]).
    pub const WELCOME: u8 = 0x81;
    /// Server: per-trace summary ([`super::encode_summary`]).
    pub const SUMMARY: u8 = 0x82;
    /// Server: structured error ([`super::CloseInfo`]); session continues
    /// only if the code says so (currently it never does).
    pub const ERROR: u8 = 0x83;
    /// Server: admission refused; payload is the suggested delay.
    pub const RETRY_AFTER: u8 = 0x84;
    /// Server: stats snapshot ([`super::ServerStats`]).
    pub const STATS: u8 = 0x85;
    /// Server: session closed ([`super::CloseInfo`]).
    pub const CLOSED: u8 = 0x86;
}

/// Machine-readable close codes carried by `ERROR`/`CLOSED` frames.
pub mod code {
    /// Orderly close after a client `BYE`.
    pub const OK: u16 = 0;
    /// Protocol violation (bad frame kind, out-of-order frame, malformed
    /// payload).
    pub const PROTOCOL: u16 = 1;
    /// The record stream was corrupt or truncated.
    pub const TRACE: u16 = 2;
    /// A cumulative session budget (bytes/records) was exhausted.
    pub const BUDGET: u16 = 3;
    /// A frame exceeded the per-frame payload cap.
    pub const FRAME_TOO_LARGE: u16 = 4;
    /// The stall watchdog reaped the session.
    pub const STALLED: u16 = 5;
    /// The server is draining for shutdown.
    pub const DRAINING: u16 = 6;
    /// Admission control rejected the session.
    pub const OVERLOADED: u16 = 7;
    /// Unexpected server-side failure.
    pub const INTERNAL: u16 = 8;
    /// A `BEGIN_WORKLOAD` named a workload the server's corpus catalog
    /// does not carry (or the server has no corpus attached).
    pub const UNKNOWN_WORKLOAD: u16 = 9;
}

/// Protocol version carried in `HELLO`/`WELCOME`.
pub const PROTOCOL_VERSION: u16 = 1;

/// Maximum predictor table index width a client may request. Caps the
/// server-side allocation a handshake can demand (2^24 two-bit counters
/// per table at most); larger requests are protocol errors, not OOMs.
pub const MAX_INDEX_BITS: u32 = 24;

/// Maximum global-history length a client may request.
pub const MAX_HISTORY: u32 = 64;

/// Which predictor a session wants on the other side of the wire.
///
/// A closed enum rather than free-form parameters: the server only
/// instantiates configurations whose resource footprint it can bound up
/// front ([`MAX_INDEX_BITS`], [`MAX_HISTORY`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PredictorSpec {
    /// A plain bimodal table.
    Bimodal {
        /// Table index width in bits.
        index_bits: u32,
    },
    /// A gshare predictor.
    Gshare {
        /// Table index width in bits.
        index_bits: u32,
        /// Global history length.
        history: u32,
    },
    /// 2Bc-gskew with four equal tables sharing one history length
    /// (the paper's §4.6 academic configuration).
    TwoBcGskewEqual {
        /// Per-table index width in bits.
        index_bits: u32,
        /// Shared global history length.
        history: u32,
    },
    /// 2Bc-gskew at the EV8's 352 Kbit budget (Table 1 geometry).
    TwoBcGskewEv8,
    /// The full EV8 predictor (lghist, banked arrays, Table 1 budget).
    Ev8,
    /// TAGE at the EV8's 352 Kbit budget (the cross-generation subject).
    TageEv8,
}

impl PredictorSpec {
    /// Instantiates the predictor this spec describes.
    pub fn build(self) -> Box<dyn ConditionalBranchPredictor> {
        use ev8_core::{Ev8Config, Ev8Predictor};
        use ev8_predictors::bimodal::Bimodal;
        use ev8_predictors::gshare::Gshare;
        use ev8_predictors::tage::{Tage, TageConfig};
        use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
        match self {
            PredictorSpec::Bimodal { index_bits } => Box::new(Bimodal::new(index_bits)),
            PredictorSpec::Gshare {
                index_bits,
                history,
            } => Box::new(Gshare::new(index_bits, history)),
            PredictorSpec::TwoBcGskewEqual {
                index_bits,
                history,
            } => Box::new(TwoBcGskew::new(TwoBcGskewConfig::equal(
                index_bits, history,
            ))),
            PredictorSpec::TwoBcGskewEv8 => Box::new(TwoBcGskew::new(TwoBcGskewConfig::ev8_size())),
            PredictorSpec::Ev8 => Box::new(Ev8Predictor::new(Ev8Config::default())),
            PredictorSpec::TageEv8 => Box::new(Tage::new(TageConfig::ev8_budget())),
        }
    }

    fn encode(self, out: &mut Vec<u8>) {
        match self {
            PredictorSpec::Bimodal { index_bits } => {
                out.push(0);
                put_u32(out, index_bits);
            }
            PredictorSpec::Gshare {
                index_bits,
                history,
            } => {
                out.push(1);
                put_u32(out, index_bits);
                put_u32(out, history);
            }
            PredictorSpec::TwoBcGskewEqual {
                index_bits,
                history,
            } => {
                out.push(2);
                put_u32(out, index_bits);
                put_u32(out, history);
            }
            PredictorSpec::TwoBcGskewEv8 => out.push(3),
            PredictorSpec::Ev8 => out.push(4),
            PredictorSpec::TageEv8 => out.push(5),
        }
    }

    fn decode(r: &mut PayloadReader<'_>) -> Result<Self, ServerError> {
        let spec = match r.u8("predictor spec tag")? {
            0 => PredictorSpec::Bimodal {
                index_bits: r.u32("bimodal index bits")?,
            },
            1 => PredictorSpec::Gshare {
                index_bits: r.u32("gshare index bits")?,
                history: r.u32("gshare history")?,
            },
            2 => PredictorSpec::TwoBcGskewEqual {
                index_bits: r.u32("2bc-gskew index bits")?,
                history: r.u32("2bc-gskew history")?,
            },
            3 => PredictorSpec::TwoBcGskewEv8,
            4 => PredictorSpec::Ev8,
            5 => PredictorSpec::TageEv8,
            _ => {
                return Err(ServerError::Protocol {
                    what: "unknown predictor spec tag",
                    offset: r.offset().saturating_sub(1),
                })
            }
        };
        let (bits, hist) = match spec {
            PredictorSpec::Bimodal { index_bits } => (index_bits, 0),
            PredictorSpec::Gshare {
                index_bits,
                history,
            }
            | PredictorSpec::TwoBcGskewEqual {
                index_bits,
                history,
            } => (index_bits, history),
            _ => (0, 0),
        };
        if bits > MAX_INDEX_BITS {
            return Err(ServerError::Protocol {
                what: "predictor index width over server cap",
                offset: r.offset(),
            });
        }
        if hist > MAX_HISTORY {
            return Err(ServerError::Protocol {
                what: "predictor history length over server cap",
                offset: r.offset(),
            });
        }
        Ok(spec)
    }
}

/// Client handshake request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// The predictor this session wants to drive.
    pub spec: PredictorSpec,
    /// Whether the session wants per-branch attribution in summaries
    /// (the server may shed it under load).
    pub attribution: bool,
}

/// Encodes a [`Hello`] payload.
pub fn encode_hello(h: &Hello, out: &mut Vec<u8>) {
    out.clear();
    put_u16(out, PROTOCOL_VERSION);
    out.push(u8::from(h.attribution));
    h.spec.encode(out);
}

/// Decodes a [`Hello`] payload. `base` is the payload's session offset.
pub fn decode_hello(payload: &[u8], base: u64) -> Result<Hello, ServerError> {
    let mut r = PayloadReader::new(payload, base);
    let version = r.u16("protocol version")?;
    if version != PROTOCOL_VERSION {
        return Err(ServerError::Protocol {
            what: "unsupported protocol version",
            offset: base,
        });
    }
    let attribution = r.bool("attribution flag")?;
    let spec = PredictorSpec::decode(&mut r)?;
    r.finish("hello")?;
    Ok(Hello { spec, attribution })
}

/// Server handshake response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Welcome {
    /// Whether attribution was granted (`false` when the server is
    /// degraded and shed it at admission).
    pub attribution: bool,
    /// The instantiated predictor's display name.
    pub predictor: String,
}

/// Encodes a [`Welcome`] payload.
pub fn encode_welcome(w: &Welcome, out: &mut Vec<u8>) {
    out.clear();
    put_u16(out, PROTOCOL_VERSION);
    out.push(u8::from(w.attribution));
    put_str(out, &w.predictor);
}

/// Decodes a [`Welcome`] payload.
pub fn decode_welcome(payload: &[u8], base: u64) -> Result<Welcome, ServerError> {
    let mut r = PayloadReader::new(payload, base);
    let version = r.u16("protocol version")?;
    if version != PROTOCOL_VERSION {
        return Err(ServerError::Protocol {
            what: "unsupported protocol version",
            offset: base,
        });
    }
    let attribution = r.bool("attribution flag")?;
    let predictor = r.string("predictor name")?;
    r.finish("welcome")?;
    Ok(Welcome {
        attribution,
        predictor,
    })
}

/// Client trace-start frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Begin {
    /// Trace (benchmark) name, echoed in the summary.
    pub name: String,
    /// Client-declared total instruction count (0 = let the server
    /// compute it from the records as Σ(1 + gap)).
    pub instructions: u64,
}

/// Encodes a [`Begin`] payload.
pub fn encode_begin(b: &Begin, out: &mut Vec<u8>) {
    out.clear();
    put_str(out, &b.name);
    put_u64(out, b.instructions);
}

/// Decodes a [`Begin`] payload.
pub fn decode_begin(payload: &[u8], base: u64) -> Result<Begin, ServerError> {
    let mut r = PayloadReader::new(payload, base);
    let name = r.string("trace name")?;
    let instructions = r.u64("instruction count")?;
    r.finish("begin")?;
    Ok(Begin { name, instructions })
}

/// Client named-workload frame: simulate a server-side corpus entry
/// instead of streaming records.
///
/// The scale rides the wire in parts per million so the protocol stays
/// float-free; the server resolves `(name, scale_ppm)` against its
/// corpus catalog's pinned generator identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BeginWorkload {
    /// Benchmark name (a `spec95` workload the server's catalog carries).
    pub name: String,
    /// Trace scale in parts per million of the benchmark's full length
    /// (1_000_000 = the full 100M-instruction trace).
    pub scale_ppm: u32,
}

/// Encodes a [`BeginWorkload`] payload.
pub fn encode_begin_workload(b: &BeginWorkload, out: &mut Vec<u8>) {
    out.clear();
    put_str(out, &b.name);
    put_u32(out, b.scale_ppm);
}

/// Decodes a [`BeginWorkload`] payload.
pub fn decode_begin_workload(payload: &[u8], base: u64) -> Result<BeginWorkload, ServerError> {
    let mut r = PayloadReader::new(payload, base);
    let name = r.string("workload name")?;
    let scale_ppm = r.u32("workload scale")?;
    r.finish("begin_workload")?;
    if scale_ppm == 0 {
        return Err(ServerError::Protocol {
            what: "workload scale must be positive",
            offset: base,
        });
    }
    Ok(BeginWorkload { name, scale_ppm })
}

/// Encodes a [`SessionSummary`] payload.
pub fn encode_summary(s: &SessionSummary, out: &mut Vec<u8>) {
    out.clear();
    put_str(out, &s.result.trace);
    put_str(out, &s.result.predictor);
    put_u64(out, s.result.instructions);
    put_u64(out, s.result.conditional_branches);
    put_u64(out, s.result.mispredictions);
    match &s.attribution {
        None => out.push(0),
        Some(a) => {
            out.push(1);
            put_u64(out, a.provider_bimodal);
            put_u64(out, a.provider_majority);
            put_u64(out, a.wrong_by_bimodal);
            put_u64(out, a.wrong_by_majority);
            put_u64(out, a.meta_decisive);
            put_u64(out, a.meta_correct);
            for v in a.actions {
                put_u64(out, v);
            }
            match a.bank_collisions {
                None => out.push(0),
                Some(c) => {
                    out.push(1);
                    put_u64(out, c);
                }
            }
        }
    }
}

/// Decodes a [`SessionSummary`] payload.
pub fn decode_summary(payload: &[u8], base: u64) -> Result<SessionSummary, ServerError> {
    let mut r = PayloadReader::new(payload, base);
    let result = SimResult {
        trace: r.string("trace name")?,
        predictor: r.string("predictor name")?,
        instructions: r.u64("instructions")?,
        conditional_branches: r.u64("conditional branches")?,
        mispredictions: r.u64("mispredictions")?,
    };
    let attribution = if r.bool("attribution present flag")? {
        let mut a = ProvenanceSummary {
            provider_bimodal: r.u64("provider_bimodal")?,
            provider_majority: r.u64("provider_majority")?,
            wrong_by_bimodal: r.u64("wrong_by_bimodal")?,
            wrong_by_majority: r.u64("wrong_by_majority")?,
            meta_decisive: r.u64("meta_decisive")?,
            meta_correct: r.u64("meta_correct")?,
            ..ProvenanceSummary::default()
        };
        for slot in a.actions.iter_mut() {
            *slot = r.u64("action counter")?;
        }
        a.bank_collisions = if r.bool("bank collision flag")? {
            Some(r.u64("bank collisions")?)
        } else {
            None
        };
        Some(a)
    } else {
        None
    };
    r.finish("summary")?;
    Ok(SessionSummary {
        result,
        attribution,
    })
}

/// Structured close detail for `ERROR` and `CLOSED` frames.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CloseInfo {
    /// Machine-readable close code (see [`code`]).
    pub code: u16,
    /// Session byte offset relevant to the close (0 when meaningless).
    pub offset: u64,
    /// Human-readable detail.
    pub message: String,
}

/// Encodes a [`CloseInfo`] payload.
pub fn encode_close(c: &CloseInfo, out: &mut Vec<u8>) {
    out.clear();
    put_u16(out, c.code);
    put_u64(out, c.offset);
    put_str(out, &c.message);
}

/// Decodes a [`CloseInfo`] payload.
pub fn decode_close(payload: &[u8], base: u64) -> Result<CloseInfo, ServerError> {
    let mut r = PayloadReader::new(payload, base);
    let code = r.u16("close code")?;
    let offset = r.u64("close offset")?;
    let message = r.string("close message")?;
    r.finish("close")?;
    Ok(CloseInfo {
        code,
        offset,
        message,
    })
}

/// Encodes a `RETRY_AFTER` payload.
pub fn encode_retry_after(millis: u64, out: &mut Vec<u8>) {
    out.clear();
    put_u64(out, millis);
}

/// Decodes a `RETRY_AFTER` payload.
pub fn decode_retry_after(payload: &[u8], base: u64) -> Result<u64, ServerError> {
    let mut r = PayloadReader::new(payload, base);
    let millis = r.u64("retry delay")?;
    r.finish("retry_after")?;
    Ok(millis)
}

/// A point-in-time snapshot of the server's supervision counters.
///
/// All counters are monotonic over the server's lifetime except
/// `sessions_active` / `sessions_queued`, which are instantaneous.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerStats {
    /// Connections admitted past admission control.
    pub sessions_accepted: u64,
    /// Connections refused with `RETRY_AFTER`.
    pub sessions_rejected: u64,
    /// Sessions that ended with an orderly `BYE`.
    pub sessions_completed: u64,
    /// Sessions reaped by the stall watchdog.
    pub sessions_stalled: u64,
    /// Sessions ended by protocol/trace/transport errors or abrupt
    /// disconnects.
    pub sessions_failed: u64,
    /// Sessions closed because the server was draining.
    pub sessions_drained: u64,
    /// Sessions currently being served.
    pub sessions_active: u64,
    /// Accepted sessions waiting in worker queues.
    pub sessions_queued: u64,
    /// Traces summarized across all sessions.
    pub traces_simulated: u64,
    /// Branch records simulated across all sessions.
    pub records_simulated: u64,
    /// Times attribution was shed from a session (degraded mode).
    pub attribution_shed: u64,
    /// Process-wide sweep watchdog abandonments
    /// ([`ev8_sim::sweep::abandoned_jobs`]).
    pub abandoned_jobs: u64,
    /// Abandoned sweep threads later observed finishing
    /// ([`ev8_sim::sweep::abandoned_jobs_finished_late`]).
    pub abandoned_jobs_finished_late: u64,
}

/// Encodes a [`ServerStats`] payload.
pub fn encode_stats(s: &ServerStats, out: &mut Vec<u8>) {
    out.clear();
    for v in [
        s.sessions_accepted,
        s.sessions_rejected,
        s.sessions_completed,
        s.sessions_stalled,
        s.sessions_failed,
        s.sessions_drained,
        s.sessions_active,
        s.sessions_queued,
        s.traces_simulated,
        s.records_simulated,
        s.attribution_shed,
        s.abandoned_jobs,
        s.abandoned_jobs_finished_late,
    ] {
        put_u64(out, v);
    }
}

/// Decodes a [`ServerStats`] payload.
pub fn decode_stats(payload: &[u8], base: u64) -> Result<ServerStats, ServerError> {
    let mut r = PayloadReader::new(payload, base);
    let stats = ServerStats {
        sessions_accepted: r.u64("sessions_accepted")?,
        sessions_rejected: r.u64("sessions_rejected")?,
        sessions_completed: r.u64("sessions_completed")?,
        sessions_stalled: r.u64("sessions_stalled")?,
        sessions_failed: r.u64("sessions_failed")?,
        sessions_drained: r.u64("sessions_drained")?,
        sessions_active: r.u64("sessions_active")?,
        sessions_queued: r.u64("sessions_queued")?,
        traces_simulated: r.u64("traces_simulated")?,
        records_simulated: r.u64("records_simulated")?,
        attribution_shed: r.u64("attribution_shed")?,
        abandoned_jobs: r.u64("abandoned_jobs")?,
        abandoned_jobs_finished_late: r.u64("abandoned_jobs_finished_late")?,
    };
    r.finish("stats")?;
    Ok(stats)
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).unwrap_or(u16::MAX);
    let s = &s.as_bytes()[..len as usize];
    put_u16(out, len);
    out.extend_from_slice(s);
}

/// Bounds-checked payload cursor; every failure is a
/// [`ServerError::Protocol`] carrying the session byte offset.
struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
}

impl<'a> PayloadReader<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        PayloadReader { buf, pos: 0, base }
    }

    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ServerError> {
        if self.buf.len() - self.pos < n {
            return Err(ServerError::Protocol {
                what,
                offset: self.offset(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ServerError> {
        Ok(self.take(1, what)?[0])
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, ServerError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ServerError::Protocol {
                what,
                offset: self.offset() - 1,
            }),
        }
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ServerError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ServerError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ServerError> {
        let b = self.take(8, what)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn string(&mut self, what: &'static str) -> Result<String, ServerError> {
        let len = self.u16(what)? as usize;
        let at = self.offset();
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ServerError::Protocol { what, offset: at })
    }

    /// Rejects trailing garbage: a well-formed payload is consumed
    /// exactly.
    fn finish(self, what: &'static str) -> Result<(), ServerError> {
        if self.pos != self.buf.len() {
            return Err(ServerError::Protocol {
                what,
                offset: self.offset(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev8_predictors::provenance::UpdateAction;

    #[test]
    fn hello_roundtrips_every_spec() {
        let specs = [
            PredictorSpec::Bimodal { index_bits: 12 },
            PredictorSpec::Gshare {
                index_bits: 14,
                history: 12,
            },
            PredictorSpec::TwoBcGskewEqual {
                index_bits: 10,
                history: 9,
            },
            PredictorSpec::TwoBcGskewEv8,
            PredictorSpec::Ev8,
            PredictorSpec::TageEv8,
        ];
        let mut buf = Vec::new();
        for spec in specs {
            for attribution in [false, true] {
                let h = Hello { spec, attribution };
                encode_hello(&h, &mut buf);
                assert_eq!(decode_hello(&buf, 0).unwrap(), h);
            }
        }
    }

    #[test]
    fn oversized_spec_requests_are_protocol_errors() {
        let mut buf = Vec::new();
        encode_hello(
            &Hello {
                spec: PredictorSpec::Bimodal {
                    index_bits: MAX_INDEX_BITS + 1,
                },
                attribution: false,
            },
            &mut buf,
        );
        let err = decode_hello(&buf, 0).expect_err("index cap must hold");
        assert!(err.to_string().contains("index width"), "{err}");

        encode_hello(
            &Hello {
                spec: PredictorSpec::Gshare {
                    index_bits: 10,
                    history: MAX_HISTORY + 1,
                },
                attribution: false,
            },
            &mut buf,
        );
        let err = decode_hello(&buf, 0).expect_err("history cap must hold");
        assert!(err.to_string().contains("history length"), "{err}");
    }

    #[test]
    fn every_spec_builds_a_working_predictor() {
        use ev8_trace::{BranchRecord, Pc};
        let specs = [
            PredictorSpec::Bimodal { index_bits: 10 },
            PredictorSpec::Gshare {
                index_bits: 10,
                history: 8,
            },
            PredictorSpec::TwoBcGskewEqual {
                index_bits: 9,
                history: 8,
            },
            PredictorSpec::TwoBcGskewEv8,
            PredictorSpec::Ev8,
            PredictorSpec::TageEv8,
        ];
        for spec in specs {
            let mut p = spec.build();
            assert!(!p.name().is_empty());
            let rec = BranchRecord::conditional(Pc::new(0x40), Pc::new(0x80), true);
            assert!(p.predict_and_update(&rec).is_some(), "{spec:?}");
        }
    }

    #[test]
    fn summary_roundtrips_with_and_without_attribution() {
        let mut s = SessionSummary {
            result: SimResult {
                trace: "gcc".to_string(),
                predictor: "test predictor".to_string(),
                instructions: 1_000_000,
                conditional_branches: 90_000,
                mispredictions: 4_321,
            },
            attribution: None,
        };
        let mut buf = Vec::new();
        encode_summary(&s, &mut buf);
        assert_eq!(decode_summary(&buf, 0).unwrap(), s);

        let mut a = ProvenanceSummary {
            provider_bimodal: 10,
            provider_majority: 89_990,
            wrong_by_bimodal: 1,
            wrong_by_majority: 4_320,
            meta_decisive: 500,
            meta_correct: 400,
            ..ProvenanceSummary::default()
        };
        a.actions = [1, 2, 3, 90_000 - 6];
        a.bank_collisions = Some(0);
        s.attribution = Some(a);
        encode_summary(&s, &mut buf);
        assert_eq!(decode_summary(&buf, 0).unwrap(), s);
    }

    #[test]
    fn action_array_width_matches_update_action_count() {
        // The wire format hard-codes the four-action histogram; if the
        // provenance enum grows, the codec must be revved with it.
        assert_eq!(UpdateAction::COUNT, 4);
    }

    #[test]
    fn truncated_payloads_error_with_session_offsets() {
        let b = Begin {
            name: "compress".to_string(),
            instructions: 42,
        };
        let mut buf = Vec::new();
        encode_begin(&b, &mut buf);
        for cut in 0..buf.len() {
            let err = decode_begin(&buf[..cut], 100).expect_err("truncation must fail");
            match err {
                ServerError::Protocol { offset, .. } => {
                    assert!(
                        (100..=100 + buf.len() as u64).contains(&offset),
                        "offset {offset} outside payload window"
                    );
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn begin_workload_roundtrips_and_rejects_zero_scale() {
        let b = BeginWorkload {
            name: "gcc".to_string(),
            scale_ppm: 2_000,
        };
        let mut buf = Vec::new();
        encode_begin_workload(&b, &mut buf);
        assert_eq!(decode_begin_workload(&buf, 0).unwrap(), b);
        for cut in 0..buf.len() {
            assert!(decode_begin_workload(&buf[..cut], 0).is_err());
        }
        encode_begin_workload(
            &BeginWorkload {
                name: "gcc".to_string(),
                scale_ppm: 0,
            },
            &mut buf,
        );
        let err = decode_begin_workload(&buf, 0).expect_err("zero scale must fail");
        assert!(err.to_string().contains("scale"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut buf = Vec::new();
        encode_retry_after(5, &mut buf);
        buf.push(0xEE);
        assert!(decode_retry_after(&buf, 0).is_err());
    }

    #[test]
    fn close_info_and_stats_roundtrip() {
        let c = CloseInfo {
            code: code::BUDGET,
            offset: 987,
            message: "session bytes exhausted".to_string(),
        };
        let mut buf = Vec::new();
        encode_close(&c, &mut buf);
        assert_eq!(decode_close(&buf, 0).unwrap(), c);

        let s = ServerStats {
            sessions_accepted: 1,
            sessions_rejected: 2,
            sessions_completed: 3,
            sessions_stalled: 4,
            sessions_failed: 5,
            sessions_drained: 6,
            sessions_active: 7,
            sessions_queued: 8,
            traces_simulated: 9,
            records_simulated: 10,
            attribution_shed: 11,
            abandoned_jobs: 12,
            abandoned_jobs_finished_late: 13,
        };
        encode_stats(&s, &mut buf);
        assert_eq!(decode_stats(&buf, 0).unwrap(), s);
    }

    #[test]
    fn invalid_utf8_name_is_a_protocol_error() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        put_u64(&mut buf, 1); // instructions
        assert!(matches!(
            decode_begin(&buf, 0),
            Err(ServerError::Protocol { .. })
        ));
    }
}
