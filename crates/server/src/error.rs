//! Error taxonomy for the prediction service.

use std::error::Error;
use std::fmt;
use std::io;
use std::time::Duration;

use ev8_trace::TraceError;

/// Error produced by the server or the client helper.
///
/// Mirrors the [`TraceError`] discipline: every protocol-level variant
/// carries the session byte offset at which the problem was detected,
/// and the enum is `#[non_exhaustive]` so future hardening can add
/// variants without a breaking release.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// Transport failure outside the framed decode path.
    Io(io::Error),
    /// The framed trace decode failed (cap, budget, corruption, EOF —
    /// all with session offsets).
    Trace(TraceError),
    /// The peer violated the session protocol (unknown frame kind,
    /// frame out of state-machine order, malformed payload field).
    Protocol {
        /// Description of the violation.
        what: &'static str,
        /// Session byte offset at which it was detected.
        offset: u64,
    },
    /// Admission control rejected the session; retry after the delay.
    Overloaded {
        /// Server-suggested backoff before reconnecting.
        retry_after: Duration,
    },
    /// The watchdog reaped the session: no complete frame arrived
    /// within the stall budget (slowloris or dead peer).
    Stalled {
        /// The stall budget that expired.
        after: Duration,
    },
    /// The server is draining for shutdown and closed the session.
    Draining,
    /// The peer reported an error through an `ERROR`/`CLOSED` frame.
    Remote {
        /// Machine-readable close code (see [`crate::proto::code`]).
        code: u16,
        /// Human-readable detail from the peer.
        message: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
            ServerError::Trace(e) => write!(f, "session stream error: {e}"),
            ServerError::Protocol { what, offset } => {
                write!(f, "protocol violation ({what} at byte {offset})")
            }
            ServerError::Overloaded { retry_after } => {
                write!(f, "server overloaded, retry after {retry_after:?}")
            }
            ServerError::Stalled { after } => {
                write!(f, "session stalled (no frame within {after:?})")
            }
            ServerError::Draining => write!(f, "server draining for shutdown"),
            ServerError::Remote { code, message } => {
                write!(f, "peer closed session (code {code}: {message})")
            }
        }
    }
}

impl Error for ServerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<TraceError> for ServerError {
    fn from(e: TraceError) -> Self {
        ServerError::Trace(e)
    }
}

impl ServerError {
    /// Whether this error is a read that exceeded the socket's stall
    /// budget — the watchdog signal, distinct from a genuine transport
    /// failure. Both `WouldBlock` and `TimedOut` are matched because the
    /// platforms differ in which kind a timed-out socket read reports.
    pub fn is_stall(&self) -> bool {
        let kind = match self {
            ServerError::Io(e) => e.kind(),
            ServerError::Trace(TraceError::Io(e)) => e.kind(),
            ServerError::Stalled { .. } => return true,
            _ => return false,
        };
        matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<ServerError> {
        vec![
            ServerError::Io(io::Error::other("boom")),
            ServerError::Trace(TraceError::UnexpectedEof { offset: 9 }),
            ServerError::Protocol {
                what: "frame out of order",
                offset: 41,
            },
            ServerError::Overloaded {
                retry_after: Duration::from_millis(250),
            },
            ServerError::Stalled {
                after: Duration::from_secs(5),
            },
            ServerError::Draining,
            ServerError::Remote {
                code: 3,
                message: "budget exhausted".to_string(),
            },
        ]
    }

    #[test]
    fn display_and_debug_format_every_variant() {
        for v in all_variants() {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn protocol_violations_report_their_offset() {
        let e = ServerError::Protocol {
            what: "x",
            offset: 123,
        };
        assert!(e.to_string().contains("byte 123"));
    }

    #[test]
    fn source_chain_reaches_wrapped_errors() {
        for v in all_variants() {
            let dyn_err: &dyn Error = &v;
            match &v {
                ServerError::Io(_) => {
                    assert!(dyn_err
                        .source()
                        .unwrap()
                        .downcast_ref::<io::Error>()
                        .is_some());
                }
                ServerError::Trace(_) => {
                    assert!(dyn_err
                        .source()
                        .unwrap()
                        .downcast_ref::<TraceError>()
                        .is_some());
                }
                _ => assert!(dyn_err.source().is_none()),
            }
        }
    }

    #[test]
    fn stall_classification() {
        assert!(ServerError::Io(io::Error::new(io::ErrorKind::WouldBlock, "t")).is_stall());
        assert!(ServerError::Io(io::Error::new(io::ErrorKind::TimedOut, "t")).is_stall());
        assert!(ServerError::Trace(TraceError::Io(io::Error::new(
            io::ErrorKind::WouldBlock,
            "t"
        )))
        .is_stall());
        assert!(ServerError::Stalled {
            after: Duration::from_secs(1)
        }
        .is_stall());
        assert!(!ServerError::Io(io::Error::other("hard")).is_stall());
        assert!(!ServerError::Draining.is_stall());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServerError>();
    }
}
