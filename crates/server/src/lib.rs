//! Prediction-as-a-service: a supervised, overload-tolerant simulation
//! server for the EV8 branch-predictor reproduction.
//!
//! The batch entry points in `ev8-sim` answer "what is this predictor's
//! misprediction rate on this trace" for a caller that holds the whole
//! trace. This crate answers the *service* form of the question:
//! long-lived clients stream wire-format branch records over TCP or
//! Unix-domain sockets, each session drives its own predictor instance
//! (any [`proto::PredictorSpec`] — bimodal, gshare, 2Bc-gskew, the full
//! EV8, TAGE), and per-trace summaries (misp/KI plus bounded
//! attribution) stream back. Session results are bit-identical to the
//! serial [`ev8_sim::simulate`] — concurrency and supervision change
//! scheduling, never predictions.
//!
//! Robustness is the design center, not an afterthought:
//!
//! * **Hostile-input hardening** — framing rides on
//!   [`ev8_trace::frame`]: per-frame size caps checked before
//!   allocation, cumulative per-session byte/record budgets, and every
//!   error carries a session byte offset.
//! * **Admission control & backpressure** — past the session cap,
//!   connections get an explicit `RETRY_AFTER` frame (seeded-jitter
//!   delay) instead of unbounded queueing.
//! * **Supervision** — per-session stall watchdogs reap slowloris
//!   clients; transient failures back off on the
//!   [`ev8_sim::sweep::RunPolicy`] schedule; the stats frame surfaces
//!   process-wide watchdog abandonment counters.
//! * **Degraded mode** — under load the server sheds attribution
//!   (observability) before predictions.
//! * **Graceful drain** — shutdown stops accepting, closes queued
//!   sessions, time-boxes in-flight ones, and every close is a
//!   machine-readable `CLOSED{code, offset, message}` frame.
//!
//! # Example
//!
//! ```
//! use std::thread;
//! use ev8_predictors::gshare::Gshare;
//! use ev8_server::proto::PredictorSpec;
//! use ev8_server::{Client, Server, ServerConfig};
//! use ev8_sim::simulate;
//! use ev8_workloads::spec95;
//!
//! let sock = std::env::temp_dir().join(format!("ev8-doc-{}.sock", std::process::id()));
//! let mut server = Server::new(ServerConfig::default());
//! server.bind_unix(&sock).unwrap();
//! let handle = server.handle();
//! let join = thread::spawn(move || server.serve());
//!
//! let trace = spec95::benchmark("compress").unwrap().generate_scaled(0.001);
//! let spec = PredictorSpec::Gshare { index_bits: 12, history: 10 };
//! let mut client = Client::connect_unix(&sock, spec, false).unwrap();
//! let summary = client.run_trace(&trace, 1024).unwrap();
//! client.bye().unwrap();
//!
//! // Bit-identical to serial simulation.
//! assert_eq!(summary.result, simulate(Gshare::new(12, 10), &trace));
//!
//! handle.shutdown();
//! let stats = join.join().unwrap();
//! assert_eq!(stats.sessions_completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod error;
pub mod proto;
pub mod server;

pub use client::Client;
pub use error::ServerError;
pub use proto::{PredictorSpec, ServerStats};
pub use server::{Server, ServerConfig, ServerHandle};
