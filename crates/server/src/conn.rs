//! Transport abstraction over TCP and Unix-domain stream sockets.

use std::io::{self, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// One connected session transport.
///
/// Both variants expose the operations the session loop needs: blocking
/// reads bounded by a stall timeout (the watchdog mechanism — a
/// slowloris peer surfaces as `WouldBlock`/`TimedOut` from the next
/// read), writes, and an independently-owned clone of the write half.
#[derive(Debug)]
pub enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain stream connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    /// Sets the read stall budget (`None` = block forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }

    /// A second handle to the same socket, used as the write half while
    /// a `FrameReader` owns the read half.
    pub fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    /// Disables Nagle buffering on TCP (frames are latency-sensitive
    /// request/response units); a no-op on Unix sockets.
    pub fn set_nodelay(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nodelay(true),
            #[cfg(unix)]
            Conn::Unix(_) => Ok(()),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}
