//! SimPoint-style weighted phase sampling: simulate an exact anchored
//! prefix plus a handful of phase-stratified tail intervals, correct
//! the staleness with a fitted training-age curve, and estimate
//! full-trace misp/KI at a fraction of the cost.
//!
//! The pipeline is the classic three stages, each deterministic:
//!
//! 1. **Profile** ([`profile_intervals`]): a single streaming pass over
//!    the [`FlatTrace`] (via [`FlatTrace::for_each_in`]) slices the
//!    record stream into fixed-length intervals and extracts one
//!    branch-behaviour vector per interval — the basic-block-vector
//!    analog is per-PC conditional execution counts, projected into a
//!    fixed [`SamplingConfig::dims`]-dimensional integer vector by a
//!    seeded random projection (bucket and sign from
//!    `ev8_util::rng::mix(seed ^ pc)`), so the feature dimension is
//!    independent of the static footprint.
//! 2. **Cluster** ([`cluster_intervals`]): an in-tree k-means over the
//!    integer vectors. Everything that could vary by platform is pinned:
//!    distances are exact `u128` sums of squares, ties break to the
//!    lowest index, centroids are `i128` floor-division means, the
//!    iteration count is capped, and initialization is a seeded first
//!    pick (`ev8_util` RNG) followed by greedy farthest-point selection.
//!    Each cluster's *representative* is its centroid-nearest member.
//! 3. **Estimate** ([`simulate_sampled`]): one predictor lives through
//!    the whole plan. It first simulates the anchored prefix
//!    ([`SamplingConfig::anchor_intervals`]) serially — those intervals
//!    are measured *exactly*, and the prefix doubles as training so the
//!    predictor reaches the tail warm. The tail is then sampled:
//!    [`SamplingConfig::tail_samples`] intervals, allocated across
//!    phases proportionally to their tail population (every phase's
//!    centroid-nearest representative is always among its picks), each
//!    re-warmed over a short history window — the warm-then-measure
//!    geometry of [`crate::window`]'s [`WindowPlan`] with `window_len =
//!    interval_len` — and everything between samples is skipped.
//!
//!    A sampled interval at position `p` is measured by a predictor
//!    that has only trained on `t_eff < p` records, so its rate reads
//!    high by the training-curve gap `m(t_eff) − m(p)`. The estimator
//!    fits `m(t) = a + b·(t+1)^−α` ([`AgeCurve`]) to the exact anchor
//!    blocks plus the samples at their recorded effective ages, and
//!    charges unmeasured member intervals `curve(p) + phase residual`
//!    instead of the raw stale rate — the fit only has to be good on
//!    the *correction*, never on the absolute rate. Conditional-branch
//!    and instruction totals are exact (the profiling pass counts
//!    them); only mispredictions are estimated.
//!
//! **Error accounting.** The estimate is useless without the error next
//! to it: [`SampledVsFull`] pairs every sampled run with the full-trace
//! result and exposes the signed misp/KI delta and relative error, and
//! every consumer (golden fixture, `sampling/*` bench group, the CI
//! smoke) records the delta beside the reduction factor. Two structural
//! guarantees bound the audit: counts other than mispredictions are
//! exact, and when the plan degenerates to "no anchor, every interval
//! sampled, full warmup" the chained predictor sees every record once
//! in order and the estimate equals the serial run *bit for bit*
//! (pinned by tests — the same exactness anchor windowing has).

use ev8_trace::FlatTrace;
use ev8_util::rng::{DefaultRng, Rng};

use crate::experiments::Factory;
use crate::metrics::SimResult;
use crate::window::WindowPlan;

/// Geometry and determinism knobs for a sampled run.
///
/// The defaults (via [`SamplingConfig::auto`]) target the acceptance
/// envelope measured on the Table 2 suite: ≥5× fewer simulated records
/// at low single-digit-percent misp/KI relative error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Records per interval. Must be non-zero.
    pub interval_len: usize,
    /// Target number of phases (clusters); clamped to the interval
    /// count. Must be non-zero.
    pub phases: usize,
    /// Dimension of the projected feature vectors. Must be non-zero.
    pub dims: usize,
    /// Warmup records replayed before each sampled tail interval,
    /// clamped so no record is ever replayed twice (the chained
    /// predictor never rewinds past its last measured position).
    pub warmup_len: usize,
    /// Seed for the feature projection and the k-means initialization.
    pub seed: u64,
    /// k-means iteration cap (assignment convergence usually stops it
    /// far earlier).
    pub max_iters: usize,
    /// Intervals in the exact anchored prefix: measured serially, and
    /// the training that carries the chained predictor into the tail.
    pub anchor_intervals: usize,
    /// Target number of sampled tail intervals (clamped to the tail
    /// population). At least one of `anchor_intervals` /
    /// `tail_samples` must be non-zero.
    pub tail_samples: usize,
}

impl SamplingConfig {
    /// The default plan for a trace of `records` records: 512
    /// intervals' worth of granularity, a one-sixteenth anchored
    /// prefix, ~50 stratified tail samples with quarter-interval
    /// re-warms. Calibrated on the full-scale Table 2 suite: the
    /// shorter anchor buys sample density, which measured better than
    /// anchor length across every hard cell — ≥5.4× record reduction
    /// with every EV8 cell within 2% relative error.
    pub fn auto(records: usize) -> Self {
        let interval_len = (records / 512).max(256);
        let n = records.div_ceil(interval_len).max(1);
        SamplingConfig {
            interval_len,
            phases: 6,
            dims: 32,
            warmup_len: (interval_len / 4).max(64),
            seed: 0xE85A_17B0_C3D2_4F69,
            max_iters: 16,
            anchor_intervals: (n / 16).max(1),
            tail_samples: (n / 10).max(4),
        }
    }

    /// Number of intervals a trace of `records` records slices into.
    pub fn intervals(&self, records: usize) -> usize {
        records.div_ceil(self.interval_len.max(1))
    }

    fn validate(&self) {
        assert!(self.interval_len > 0, "interval_len must be non-zero");
        assert!(self.phases > 0, "phases must be non-zero");
        assert!(self.dims > 0, "dims must be non-zero");
        assert!(
            self.anchor_intervals > 0 || self.tail_samples > 0,
            "anchor_intervals or tail_samples must be non-zero"
        );
    }
}

/// One profiled interval: exact per-interval counts plus the projected
/// behaviour vector k-means clusters on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    /// First record index (inclusive).
    pub start: usize,
    /// One past the last record index.
    pub end: usize,
    /// Conditional branches executed in the interval (exact).
    pub conditional_branches: u64,
    /// Instructions accounted to the interval (exact; record + gap).
    pub instructions: u64,
    /// Projected per-PC execution-count vector (the BBV analog).
    pub features: Vec<i64>,
}

/// One phase from clustering: a representative interval standing in for
/// `weight` member intervals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Index (into the interval list) of the centroid-nearest member.
    pub representative: usize,
    /// Number of member intervals (the population weight).
    pub weight: usize,
    /// Member interval indices, ascending.
    pub members: Vec<usize>,
}

/// The fitted training-age curve `m(t) = steady + transient·(t+1)^−α`
/// (t in interval units, m in mispredictions per instruction).
///
/// Fit by weighted least squares over the exact anchor blocks and the
/// tail samples at their effective ages, with `steady ≥ 0`,
/// `transient ≥ 0` and α grid-searched — misprediction rates decay
/// with training, so the constraints keep a noisy fit from
/// extrapolating nonsense.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AgeCurve {
    /// Asymptotic (fully trained) misprediction rate per instruction.
    pub steady: f64,
    /// Transient amplitude at age zero.
    pub transient: f64,
    /// Power-law decay exponent.
    pub alpha: f64,
}

impl AgeCurve {
    /// The fitted rate at training age `t` (interval units).
    pub fn eval(&self, t: f64) -> f64 {
        self.steady + self.transient * (t + 1.0).powf(-self.alpha)
    }
}

/// One measured tail interval from a sampled run.
#[derive(Clone, Debug, PartialEq)]
pub struct TailSample {
    /// Interval index.
    pub interval: usize,
    /// Index into [`SampledRun::phases`] of the owning phase.
    pub phase: usize,
    /// Exact mispredictions measured in the interval.
    pub mispredictions: u64,
    /// The chained predictor's training age (interval units, at the
    /// window midpoint) when the interval was measured.
    pub effective_age: f64,
}

/// A population-weighted sampled estimate of a full-trace run.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// Estimated totals, shaped exactly like a serial [`SimResult`]:
    /// `instructions` and `conditional_branches` are exact;
    /// `mispredictions` is the estimate rounded to the nearest branch
    /// (the unrounded value is
    /// [`SampledRun::estimated_mispredictions`]).
    pub estimate: SimResult,
    /// The unrounded misprediction estimate.
    pub estimated_mispredictions: f64,
    /// The phases, ordered by ascending representative index.
    pub phases: Vec<Phase>,
    /// Total intervals profiled (phase weights sum to this).
    pub intervals: usize,
    /// Intervals in the exact anchored prefix (clamped to the total).
    pub anchor_intervals: usize,
    /// Exact mispredictions counted in the anchored prefix.
    pub anchor_mispredictions: u64,
    /// The measured tail samples, ascending by interval.
    pub samples: Vec<TailSample>,
    /// The fitted training-age curve used for staleness correction.
    pub curve: AgeCurve,
    /// Records actually run through a predictor (anchor + warmup +
    /// measured samples).
    pub simulated_records: usize,
    /// Records in the full trace.
    pub total_records: usize,
    /// The resolved configuration.
    pub config: SamplingConfig,
}

impl SampledRun {
    /// How many times fewer records were simulated than a full pass
    /// (`total / simulated`; ∞-free: a degenerate full-cost plan
    /// returns 1.0).
    pub fn reduction(&self) -> f64 {
        if self.simulated_records == 0 {
            1.0
        } else {
            self.total_records as f64 / self.simulated_records as f64
        }
    }
}

/// A sampled run paired with the full-trace ground truth — the error is
/// never reported without the number it qualifies.
#[derive(Clone, Debug)]
pub struct SampledVsFull {
    /// The full serial result.
    pub full: SimResult,
    /// The sampled estimate.
    pub sampled: SampledRun,
}

impl SampledVsFull {
    /// Signed misp/KI delta: `sampled − full`.
    pub fn misp_ki_delta(&self) -> f64 {
        let full = self.full.checked_misp_per_ki().unwrap_or(0.0);
        let est = self.sampled.estimate.checked_misp_per_ki().unwrap_or(0.0);
        est - full
    }

    /// |sampled − full| misp/KI as a fraction of the full value
    /// (0 when the full run had no mispredictions).
    pub fn relative_error(&self) -> f64 {
        let full = self.full.checked_misp_per_ki().unwrap_or(0.0);
        if full == 0.0 {
            0.0
        } else {
            (self.misp_ki_delta() / full).abs()
        }
    }
}

/// Projection bucket and sign for a static branch PC: deterministic,
/// platform-independent, shared by every interval.
#[inline]
fn project(seed: u64, pc_word: u64, dims: usize) -> (usize, i64) {
    let h = ev8_util::rng::mix(seed ^ pc_word);
    let bucket = (h % dims as u64) as usize;
    let sign = if (h >> 63) & 1 == 1 { 1 } else { -1 };
    (bucket, sign)
}

/// Stage 1: slice `trace` into `config.interval_len`-record intervals
/// and extract the projected behaviour vector of each, in one streaming
/// pass ([`FlatTrace::for_each_in`] per slice, consumed in order).
///
/// # Panics
///
/// Panics if the config fails validation.
pub fn profile_intervals(trace: &FlatTrace, config: &SamplingConfig) -> Vec<Interval> {
    config.validate();
    let len = trace.len();
    let mut intervals = Vec::with_capacity(config.intervals(len));
    let mut start = 0usize;
    while start < len {
        let end = (start + config.interval_len).min(len);
        let mut iv = Interval {
            start,
            end,
            conditional_branches: 0,
            instructions: 0,
            features: vec![0i64; config.dims],
        };
        trace.for_each_in(start..end, |r| {
            iv.instructions += 1 + u64::from(r.gap);
            if r.kind.is_conditional() {
                iv.conditional_branches += 1;
                let (bucket, sign) = project(config.seed, r.pc.as_u64() >> 2, config.dims);
                iv.features[bucket] += sign;
            }
        });
        intervals.push(iv);
        start = end;
    }
    intervals
}

/// Exact squared Euclidean distance between two integer vectors.
fn dist2(a: &[i64], b: &[i64]) -> u128 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (x - y) as i128;
            (d * d) as u128
        })
        .sum()
}

/// Stage 2: deterministic k-means over the interval feature vectors.
///
/// Initialization is a seeded uniform first pick followed by greedy
/// farthest-point selection (maximize the minimum distance to the
/// chosen set; ties to the lowest interval index). Assignment breaks
/// distance ties to the lowest cluster index; centroids are elementwise
/// `i128` floor-division means; iteration stops at assignment
/// convergence or `config.max_iters`. Empty clusters are dropped from
/// the output, so phase weights always sum to the interval count.
///
/// # Panics
///
/// Panics if the config fails validation.
pub fn cluster_intervals(intervals: &[Interval], config: &SamplingConfig) -> Vec<Phase> {
    config.validate();
    let n = intervals.len();
    if n == 0 {
        return Vec::new();
    }
    let k = config.phases.min(n);
    let dims = config.dims;

    // Seeded first centroid, then greedy farthest-point: deterministic
    // and well-spread without any float arithmetic.
    let mut rng = DefaultRng::seed_from_u64(config.seed);
    let first = rng.gen_range(0..n);
    let mut centroids: Vec<Vec<i64>> = vec![intervals[first].features.clone()];
    let mut min_d2: Vec<u128> = intervals
        .iter()
        .map(|iv| dist2(&iv.features, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let mut best = 0usize;
        for i in 1..n {
            if min_d2[i] > min_d2[best] {
                best = i;
            }
        }
        centroids.push(intervals[best].features.clone());
        let newest = centroids.last().expect("just pushed");
        for (i, iv) in intervals.iter().enumerate() {
            min_d2[i] = min_d2[i].min(dist2(&iv.features, newest));
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for _ in 0..config.max_iters.max(1) {
        // Assign: nearest centroid, ties to the lowest cluster index.
        let mut changed = false;
        for (i, iv) in intervals.iter().enumerate() {
            let mut best_c = 0usize;
            let mut best_d = dist2(&iv.features, &centroids[0]);
            for (c, centroid) in centroids.iter().enumerate().skip(1) {
                let d = dist2(&iv.features, centroid);
                if d < best_d {
                    best_d = d;
                    best_c = c;
                }
            }
            if assignment[i] != best_c {
                assignment[i] = best_c;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Recenter: i128 sums, floor-division means; empty clusters keep
        // their previous centroid (they can re-acquire members later).
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let mut sums = vec![0i128; dims];
            let mut count = 0i128;
            for (i, iv) in intervals.iter().enumerate() {
                if assignment[i] == c {
                    count += 1;
                    for (s, f) in sums.iter_mut().zip(&iv.features) {
                        *s += i128::from(*f);
                    }
                }
            }
            if count > 0 {
                for (dst, s) in centroid.iter_mut().zip(&sums) {
                    *dst = s.div_euclid(count) as i64;
                }
            }
        }
    }

    // Emit phases: representative = centroid-nearest member (ties to the
    // lowest interval index), ordered by representative index.
    let mut phases: Vec<Phase> = Vec::with_capacity(k);
    for (c, centroid) in centroids.iter().enumerate() {
        let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
        if members.is_empty() {
            continue;
        }
        let representative = *members
            .iter()
            .min_by_key(|&&i| (dist2(&intervals[i].features, centroid), i))
            .expect("non-empty members");
        phases.push(Phase {
            representative,
            weight: members.len(),
            members,
        });
    }
    phases.sort_by_key(|p| p.representative);
    debug_assert_eq!(phases.iter().map(|p| p.weight).sum::<usize>(), n);
    phases
}

/// Weighted least-squares fit of `y = steady + transient·(t+1)^−α` over
/// `(age, rate, weight)` points, constrained to non-negative
/// coefficients with α grid-searched in [0.02, 2.0].
fn fit_curve(points: &[(f64, f64, f64)]) -> AgeCurve {
    let sw: f64 = points.iter().map(|p| p.2).sum();
    if sw <= 0.0 {
        return AgeCurve {
            steady: 0.0,
            transient: 0.0,
            alpha: 1.0,
        };
    }
    let mean = points.iter().map(|p| p.1 * p.2).sum::<f64>() / sw;
    let mut best = AgeCurve {
        steady: mean.max(0.0),
        transient: 0.0,
        alpha: 1.0,
    };
    let mut best_sse = f64::INFINITY;
    let mut step = 1usize;
    while step <= 100 {
        let alpha = step as f64 * 0.02;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for &(t, y, w) in points {
            let x = (t + 1.0).powf(-alpha);
            sx += w * x;
            sy += w * y;
            sxx += w * x * x;
            sxy += w * x * y;
        }
        let det = sw * sxx - sx * sx;
        let (mut a, mut b) = if det.abs() > 1e-12 {
            ((sy * sxx - sx * sxy) / det, (sw * sxy - sx * sy) / det)
        } else {
            (mean, 0.0)
        };
        if b < 0.0 {
            // Rates rise with age only through noise: flat fallback.
            b = 0.0;
            a = mean;
        } else if a < 0.0 {
            // Negative asymptote is unphysical: pin it and refit b.
            a = 0.0;
            b = if sxx > 1e-12 {
                (sxy / sxx).max(0.0)
            } else {
                0.0
            };
        }
        let mut sse = 0.0;
        for &(t, y, w) in points {
            let e = y - (a + b * (t + 1.0).powf(-alpha));
            sse += w * e * e;
        }
        if sse < best_sse {
            best_sse = sse;
            best = AgeCurve {
                steady: a,
                transient: b,
                alpha,
            };
        }
        step += 1;
    }
    best
}

/// Allocates `target` tail samples across phases proportionally to
/// their tail population (largest-remainder apportionment, every phase
/// with tail members gets at least one pick when the budget allows),
/// picks members evenly spaced within each phase, and forces each
/// phase's centroid-nearest representative into its picks when it lies
/// in the tail. Returns `(interval, phase index)` ascending by
/// interval.
fn allocate_samples(phases: &[Phase], anchor: usize, target: usize) -> Vec<(usize, usize)> {
    let tails: Vec<Vec<usize>> = phases
        .iter()
        .map(|p| p.members.iter().copied().filter(|&m| m >= anchor).collect())
        .collect();
    let tail_total: usize = tails.iter().map(Vec::len).sum();
    let target = target.min(tail_total);
    if target == 0 {
        return Vec::new();
    }
    // Largest-remainder apportionment, ties to the lowest phase index.
    let mut quota: Vec<usize> = tails
        .iter()
        .map(|t| target * t.len() / tail_total)
        .collect();
    let mut leftover = target - quota.iter().sum::<usize>();
    let mut by_rem: Vec<usize> = (0..phases.len()).collect();
    by_rem.sort_by_key(|&i| (std::cmp::Reverse(target * tails[i].len() % tail_total), i));
    for &i in &by_rem {
        if leftover == 0 {
            break;
        }
        if quota[i] < tails[i].len() {
            quota[i] += 1;
            leftover -= 1;
        }
    }
    // Every phase with tail members deserves a sample: steal from the
    // fattest quota (ties to the lowest index) while one can spare.
    while let Some(starved) = (0..phases.len()).find(|&i| !tails[i].is_empty() && quota[i] == 0) {
        let Some(donor) = (0..phases.len())
            .filter(|&i| quota[i] >= 2)
            .max_by_key(|&i| (quota[i], std::cmp::Reverse(i)))
        else {
            break;
        };
        quota[starved] += 1;
        quota[donor] -= 1;
    }
    let mut chosen: Vec<(usize, usize)> = Vec::with_capacity(target);
    for (pi, tail) in tails.iter().enumerate() {
        let q = quota[pi];
        if q == 0 {
            continue;
        }
        let mut picks: Vec<usize> = (0..q)
            .map(|i| tail[(i * tail.len() / q + tail.len() / (2 * q)).min(tail.len() - 1)])
            .collect();
        let rep = phases[pi].representative;
        if rep >= anchor && !picks.contains(&rep) {
            let nearest = (0..picks.len())
                .min_by_key(|&i| (picks[i].abs_diff(rep), i))
                .expect("q > 0");
            picks[nearest] = rep;
        }
        picks.sort_unstable();
        picks.dedup();
        for m in picks {
            chosen.push((m, pi));
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Stage 3: the anchored chained estimate.
///
/// One predictor from `factory` simulates the anchored prefix serially
/// (exact per-interval counts), then visits the phase-allocated tail
/// samples in position order, re-warming over at most
/// `config.warmup_len` records before each (never rewinding past its
/// last simulated position, so no record is replayed twice) and
/// skipping everything in between. Unmeasured tail intervals are
/// charged the fitted [`AgeCurve`] at their own age plus their phase's
/// instruction-weighted sample residual; measured intervals keep their
/// exact counts.
///
/// # Panics
///
/// Panics if the config fails validation.
pub fn simulate_sampled(
    factory: &Factory,
    trace: &FlatTrace,
    config: &SamplingConfig,
) -> SampledRun {
    config.validate();
    let intervals = profile_intervals(trace, config);
    let n = intervals.len();
    let phases = cluster_intervals(&intervals, config);
    let plan = WindowPlan::new(config.interval_len, config.warmup_len);
    let anchor = config.anchor_intervals.min(n);
    let len = trace.len();

    let mut predictor = factory();
    let mut anchor_misps: Vec<u64> = Vec::with_capacity(anchor);
    for iv in &intervals[..anchor] {
        let mut misp = 0u64;
        trace.for_each_in(iv.start..iv.end, |r| {
            if let Some(pred) = predictor.predict_and_update(r) {
                misp += u64::from(pred != r.outcome);
            }
        });
        anchor_misps.push(misp);
    }
    let anchor_end = intervals.get(anchor).map_or(len, |iv| iv.start);
    let mut consumed = anchor_end; // records the chained predictor has seen
    let mut simulated = anchor_end;

    let chosen = allocate_samples(&phases, anchor, config.tail_samples);
    let mut samples: Vec<TailSample> = Vec::with_capacity(chosen.len());
    let mut prev_end = anchor_end;
    for &(j, pi) in &chosen {
        let (start, end) = (intervals[j].start, intervals[j].end);
        let warm_start = start.saturating_sub(plan.warmup_len).max(prev_end);
        trace.for_each_in(warm_start..start, |r| {
            predictor.predict_and_update(r);
        });
        consumed += start - warm_start;
        let effective_age = (consumed + (end - start) / 2) as f64 / config.interval_len as f64;
        let mut misp = 0u64;
        trace.for_each_in(start..end, |r| {
            if let Some(pred) = predictor.predict_and_update(r) {
                misp += u64::from(pred != r.outcome);
            }
        });
        consumed += end - start;
        simulated += end - warm_start;
        prev_end = end;
        samples.push(TailSample {
            interval: j,
            phase: pi,
            mispredictions: misp,
            effective_age,
        });
    }

    // Age curve: geometric anchor blocks (exact rates) plus the samples
    // at their effective ages. Ages in interval units, rates per
    // instruction.
    let mut points: Vec<(f64, f64, f64)> = Vec::new();
    let mut hi = anchor;
    while hi >= 4 && points.len() < 5 {
        let lo = hi / 2;
        let misp: u64 = anchor_misps[lo..hi].iter().sum();
        let instr: u64 = intervals[lo..hi].iter().map(|iv| iv.instructions).sum();
        points.push((
            (lo + hi) as f64 / 2.0,
            misp as f64 / instr.max(1) as f64,
            instr as f64,
        ));
        hi = lo;
    }
    for s in &samples {
        let instr = intervals[s.interval].instructions;
        points.push((
            s.effective_age,
            s.mispredictions as f64 / instr.max(1) as f64,
            instr as f64,
        ));
    }
    let curve = fit_curve(&points);

    // Phase residuals: instruction-weighted mean deviation of each
    // phase's samples from the curve at their measured ages.
    let mut res_num = vec![0.0f64; phases.len()];
    let mut res_den = vec![0.0f64; phases.len()];
    for s in &samples {
        let instr = intervals[s.interval].instructions as f64;
        let rate = s.mispredictions as f64 / instr.max(1.0);
        res_num[s.phase] += instr * (rate - curve.eval(s.effective_age));
        res_den[s.phase] += instr;
    }
    let mut member_phase = vec![usize::MAX; n];
    for (pi, ph) in phases.iter().enumerate() {
        for &m in &ph.members {
            member_phase[m] = pi;
        }
    }
    let mut measured_tail = vec![false; n];
    let mut estimated: f64 = anchor_misps.iter().map(|&m| m as f64).sum();
    for s in &samples {
        measured_tail[s.interval] = true;
        estimated += s.mispredictions as f64;
    }
    for (j, iv) in intervals.iter().enumerate().skip(anchor) {
        if measured_tail[j] {
            continue;
        }
        let pi = member_phase[j];
        let residual = if pi != usize::MAX && res_den[pi] > 0.0 {
            res_num[pi] / res_den[pi]
        } else {
            0.0
        };
        let rate = (curve.eval(j as f64 + 0.5) + residual).max(0.0);
        estimated += rate * iv.instructions as f64;
    }

    let estimate = SimResult {
        trace: trace.name().to_owned(),
        predictor: predictor.name(),
        instructions: trace.instruction_count(),
        conditional_branches: trace.conditional_count(),
        mispredictions: estimated.round() as u64,
    };
    SampledRun {
        estimate,
        estimated_mispredictions: estimated,
        intervals: n,
        anchor_intervals: anchor,
        anchor_mispredictions: anchor_misps.iter().sum(),
        samples,
        curve,
        phases,
        simulated_records: simulated,
        total_records: len,
        config: *config,
    }
}

/// Runs both the sampled estimate and the full serial reference, pairing
/// them so the |sampled − full| delta sits next to every number.
pub fn validate_sampled(
    factory: &Factory,
    trace: &FlatTrace,
    config: &SamplingConfig,
) -> SampledVsFull {
    let sampled = simulate_sampled(factory, trace, config);
    let full = crate::batch::simulate_flat(factory(), trace);
    SampledVsFull { full, sampled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::simulate_flat;
    use crate::experiments::factory;
    use ev8_predictors::gshare::Gshare;
    use ev8_workloads::spec95;
    use std::sync::Arc;

    fn compress(scale: f64) -> Arc<FlatTrace> {
        spec95::cached_flat("compress", scale).expect("known benchmark")
    }

    fn tiny_config(trace: &FlatTrace) -> SamplingConfig {
        SamplingConfig {
            interval_len: (trace.len() / 24).max(64),
            phases: 4,
            dims: 16,
            warmup_len: (trace.len() / 96).max(16),
            seed: 7,
            max_iters: 8,
            anchor_intervals: 4,
            tail_samples: 6,
        }
    }

    #[test]
    fn profile_counts_are_exact_partitions() {
        let trace = compress(0.001);
        let config = tiny_config(&trace);
        let intervals = profile_intervals(&trace, &config);
        assert_eq!(intervals.len(), config.intervals(trace.len()));
        let conds: u64 = intervals.iter().map(|iv| iv.conditional_branches).sum();
        let instrs: u64 = intervals.iter().map(|iv| iv.instructions).sum();
        assert_eq!(conds, trace.conditional_count());
        assert_eq!(instrs, trace.instruction_count());
        // Contiguous, non-overlapping, covering.
        let mut expected_start = 0usize;
        for iv in &intervals {
            assert_eq!(iv.start, expected_start);
            assert!(iv.end > iv.start);
            expected_start = iv.end;
        }
        assert_eq!(expected_start, trace.len());
    }

    #[test]
    fn clustering_is_deterministic_and_weights_sum() {
        let trace = compress(0.001);
        let config = tiny_config(&trace);
        let intervals = profile_intervals(&trace, &config);
        let a = cluster_intervals(&intervals, &config);
        let b = cluster_intervals(&intervals, &config);
        assert_eq!(a, b);
        assert_eq!(
            a.iter().map(|p| p.weight).sum::<usize>(),
            intervals.len(),
            "weights must partition the interval population"
        );
        for p in &a {
            assert!(p.members.contains(&p.representative));
            assert_eq!(p.members.len(), p.weight);
        }
    }

    #[test]
    fn every_interval_sampled_with_full_warmup_is_bit_exact() {
        let trace = compress(0.001);
        let mut config = tiny_config(&trace);
        config.anchor_intervals = 0;
        config.tail_samples = usize::MAX; // every interval sampled
        config.warmup_len = trace.len(); // chain through every gap
        let fac = factory(|| Gshare::new(12, 10));
        let run = simulate_sampled(&fac, &trace, &config);
        let serial = simulate_flat(Gshare::new(12, 10), &trace);
        assert_eq!(run.estimate, serial);
        assert_eq!(run.estimated_mispredictions, serial.mispredictions as f64);
        assert!(run.reduction() <= 1.0 + 1e-9); // degenerate plan saves nothing
        assert_eq!(run.samples.len(), run.intervals);
    }

    #[test]
    fn full_anchor_is_bit_exact_too() {
        let trace = compress(0.001);
        let mut config = tiny_config(&trace);
        config.anchor_intervals = usize::MAX;
        let fac = factory(|| Gshare::new(12, 10));
        let run = simulate_sampled(&fac, &trace, &config);
        let serial = simulate_flat(Gshare::new(12, 10), &trace);
        assert_eq!(run.estimate, serial);
        assert!(run.samples.is_empty());
        assert_eq!(run.anchor_intervals, run.intervals);
    }

    #[test]
    fn sampled_estimate_lands_near_the_serial_truth() {
        let trace = compress(0.02);
        let config = SamplingConfig::auto(trace.len());
        let fac = factory(|| Gshare::new(14, 12));
        let cmp = validate_sampled(&fac, &trace, &config);
        assert!(
            cmp.sampled.reduction() > 4.0,
            "reduction {}",
            cmp.sampled.reduction()
        );
        // The 2% acceptance envelope holds at full scale (pinned by the
        // sampling bench); at one-fiftieth scale the trace is still
        // cold-start dominated, so the band here is looser.
        assert!(
            cmp.relative_error() < 0.06,
            "relative error {} (delta {})",
            cmp.relative_error(),
            cmp.misp_ki_delta()
        );
        // Exact fields are exact.
        assert_eq!(cmp.sampled.estimate.instructions, cmp.full.instructions);
        assert_eq!(
            cmp.sampled.estimate.conditional_branches,
            cmp.full.conditional_branches
        );
    }

    #[test]
    fn sampled_run_is_deterministic_across_runs_and_threads() {
        let trace = compress(0.001);
        let config = SamplingConfig::auto(trace.len());
        let fac = factory(|| Gshare::new(12, 10));
        let a = simulate_sampled(&fac, &trace, &config);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let trace = Arc::clone(&trace);
                let fac = Arc::clone(&fac);
                std::thread::spawn(move || simulate_sampled(&fac, &trace, &config))
            })
            .collect();
        for h in handles {
            let b = h.join().expect("no panic");
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(a.phases, b.phases);
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.simulated_records, b.simulated_records);
        }
    }

    #[test]
    fn representatives_are_always_sampled() {
        let trace = compress(0.002);
        let config = SamplingConfig::auto(trace.len());
        let fac = factory(|| Gshare::new(12, 10));
        let run = simulate_sampled(&fac, &trace, &config);
        let sampled: std::collections::HashSet<usize> =
            run.samples.iter().map(|s| s.interval).collect();
        for ph in &run.phases {
            if ph.representative >= run.anchor_intervals {
                assert!(
                    sampled.contains(&ph.representative),
                    "tail representative {} must be measured",
                    ph.representative
                );
            }
        }
    }

    #[test]
    fn empty_trace_yields_an_empty_run() {
        let trace = Arc::new(FlatTrace::from_trace(&ev8_trace::Trace::default()));
        let fac = factory(|| Gshare::new(10, 8));
        let config = SamplingConfig {
            interval_len: 64,
            phases: 4,
            dims: 8,
            warmup_len: 64,
            seed: 1,
            max_iters: 4,
            anchor_intervals: 2,
            tail_samples: 4,
        };
        let run = simulate_sampled(&fac, &trace, &config);
        assert_eq!(run.intervals, 0);
        assert!(run.phases.is_empty());
        assert!(run.samples.is_empty());
        assert_eq!(run.estimate.mispredictions, 0);
        assert_eq!(run.reduction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "interval_len must be non-zero")]
    fn zero_interval_len_panics() {
        let trace = compress(0.0005);
        let mut config = tiny_config(&trace);
        config.interval_len = 0;
        profile_intervals(&trace, &config);
    }

    #[test]
    #[should_panic(expected = "anchor_intervals or tail_samples")]
    fn zero_budget_panics() {
        let trace = compress(0.0005);
        let mut config = tiny_config(&trace);
        config.anchor_intervals = 0;
        config.tail_samples = 0;
        profile_intervals(&trace, &config);
    }
}
