//! Trace-driven simulation harness and the paper's experiments.
//!
//! The paper's methodology (§8.1.1): "Trace driven branch simulations with
//! immediate update were used to explore the design space ... The metric
//! used to report the results is mispredictions per 1000 instructions
//! (misp/KI)."
//!
//! * [`simulator`] — [`simulate`] runs any
//!   [`ev8_predictors::BranchPredictor`] over a trace with immediate
//!   update; [`simulate_with_faults`] is the same loop with an
//!   `ev8_faults` injector stepped per branch (a separate entry point,
//!   so the fault-free hot path carries no disabled-hook cost);
//!   [`simulate_stale_update`]
//!   models a predictor with *no speculative history update* (the
//!   pathology the paper's reference \[8\] warns about), while the faithful
//!   commit-time model lives in
//!   `TwoBcGskewConfig::with_commit_window` (validated by
//!   [`experiments::delayed_update`]); [`simulate_corpus`] is the same
//!   immediate-update loop fed by a streaming
//!   [`ev8_trace::corpus::CorpusReader`] decode, bit-identical to
//!   [`simulate`] on the same trace without ever materializing it.
//! * [`batch`] — the sweep engine: [`simulate_many`] steps K predictor
//!   configurations per record in one pass over a packed
//!   [`ev8_trace::FlatTrace`], bit-identical to K serial [`simulate`]
//!   calls; [`simulate_flat`] is the single-config flat-trace loop.
//! * [`observe`] — the opt-in observability layer: [`simulate_observed`]
//!   threads an [`observe::Observer`] through a dedicated loop (again a
//!   separate entry point — the plain hot path carries no hook), feeding
//!   per-branch provenance into attribution counters, runtime invariant
//!   checks (§6 bank collisions, exact count reconciliation) and an
//!   optional JSONL event stream.
//! * [`window`] — windowed single-trace parallelism:
//!   [`simulate_windowed`] splits one flat trace into contiguous windows
//!   with warmup prefixes, simulates them on worker threads, and splices
//!   the scoreboards — bit-identical to serial at full warmup and with a
//!   measured, convergent misprediction error otherwise.
//! * [`sampling`] — SimPoint-style weighted phase sampling:
//!   [`simulate_sampled`] profiles per-interval branch-behaviour
//!   vectors in one streaming pass, clusters them with a deterministic
//!   in-tree k-means, simulates one warm representative per phase and
//!   returns a population-weighted estimate with the |sampled − full|
//!   misp/KI delta recorded next to every number.
//! * [`metrics`] — [`SimResult`] with misp/KI,
//!   accuracy and counts.
//! * [`sweep`] — parallel execution of simulation jobs over worker
//!   threads (`std::thread::scope`).
//! * [`report`] — aligned text tables for experiment output.
//! * [`experiments`] — one module per table/figure of the paper's
//!   evaluation (Tables 1-3, Figures 5-10), each regenerating the paper's
//!   rows/series on the synthetic SPECINT95 suite.
//!
//! # Example
//!
//! ```
//! use ev8_predictors::gshare::Gshare;
//! use ev8_sim::simulator::simulate;
//! use ev8_workloads::spec95;
//!
//! let trace = spec95::benchmark("compress").unwrap().generate_scaled(0.001);
//! let result = simulate(Gshare::new(14, 14), &trace);
//! assert!(result.misp_per_ki() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod experiments;
pub mod metrics;
pub mod observe;
pub mod report;
pub mod sampling;
pub mod session;
pub mod simulator;
pub mod sweep;
pub mod window;

pub use batch::{
    simulate_flat, simulate_gshare_sweep, simulate_gshare_sweep_bitsliced, simulate_many,
};
pub use metrics::SimResult;
pub use observe::simulate_observed;
pub use sampling::{
    cluster_intervals, profile_intervals, simulate_sampled, validate_sampled, AgeCurve, Interval,
    Phase, SampledRun, SampledVsFull, SamplingConfig, TailSample,
};
pub use session::{ProvenanceSummary, SessionSim, SessionSummary};
pub use simulator::{
    simulate, simulate_corpus, simulate_stale_update, simulate_stale_update_with_scratch,
    simulate_with_faults,
};
pub use window::{simulate_windowed, simulate_windowed_factory, WindowPlan, WindowedRun};
