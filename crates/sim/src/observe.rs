//! Per-prediction attribution and event tracing — the observability layer.
//!
//! Aggregate misp/KI hides everything the paper actually argues about:
//! which of BIM/G0/G1 provided a prediction, whether Meta chose the right
//! side, what the §4.2 partial update did, and whether the §6 bank
//! interleave really is conflict-free. This module threads an opt-in
//! [`Observer`] through a dedicated simulation loop,
//! [`simulate_observed`], that consumes the per-branch
//! [`Provenance`] the predictor emits through
//! [`ObservedPredictor`].
//!
//! Like `simulate_with_faults`, the observed loop is a **separate entry
//! point**: [`crate::simulate`] carries no observer check at all, so the
//! plain hot path is zero-cost *by construction* (verified by the
//! `observe_hook` group in `BENCH_sim.json`: disabled ≈ 0%, armed no-op
//! observer ≲ 2%).
//!
//! Three observers are provided:
//!
//! * [`NullObserver`] — the no-op, for measuring hook overhead;
//! * [`Attribution`] — the counting observer: provider/vote/action
//!   counters that [`Attribution::reconcile`] cross-checks *exactly*
//!   against the run's [`SimResult`], a per-static-branch histogram, and
//!   the §6 bank-collision invariant;
//! * [`JsonlObserver`] — a structured JSONL event stream (one object per
//!   prediction, via `ev8_util::json`) for offline analysis.

use std::collections::HashMap;
use std::io::Write;

use ev8_predictors::observe::ObservedPredictor;
use ev8_predictors::provenance::{Provenance, UpdateAction};
use ev8_predictors::twobcgskew::ChosenComponent;
use ev8_trace::Trace;
use ev8_util::json::JsonObject;

use crate::metrics::SimResult;

/// A sink for per-branch prediction provenance.
///
/// Observers are deliberately dumb sinks: all invariants live in the
/// concrete implementations, so composing observers (see the tuple impl)
/// never changes what any one of them records.
pub trait Observer {
    /// Called once per dynamic conditional branch, after the predictor
    /// updated.
    fn on_prediction(&mut self, p: &Provenance);

    /// Called once at the end of the run with the predictor's §6
    /// bank-collision counter (`None` for unbanked predictors).
    fn on_finish(&mut self, bank_collisions: Option<u64>) {
        let _ = bank_collisions;
    }
}

/// The no-op observer: every hook is an empty inlinable body. Used by the
/// `observe_hook` bench to measure the armed-but-idle cost of the
/// observed loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline(always)]
    fn on_prediction(&mut self, _p: &Provenance) {}

    #[inline(always)]
    fn on_finish(&mut self, _bank_collisions: Option<u64>) {}
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_prediction(&mut self, p: &Provenance) {
        (**self).on_prediction(p);
    }

    fn on_finish(&mut self, bank_collisions: Option<u64>) {
        (**self).on_finish(bank_collisions);
    }
}

/// Fan-out: both observers see every event (e.g. attribution counters
/// plus a JSONL stream in one run).
impl<A: Observer, B: Observer> Observer for (A, B) {
    fn on_prediction(&mut self, p: &Provenance) {
        self.0.on_prediction(p);
        self.1.on_prediction(p);
    }

    fn on_finish(&mut self, bank_collisions: Option<u64>) {
        self.0.on_finish(bank_collisions);
        self.1.on_finish(bank_collisions);
    }
}

/// Per-static-branch counts collected by [`Attribution`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcStats {
    /// Dynamic predictions of this static branch.
    pub predictions: u64,
    /// Mispredictions of this static branch.
    pub mispredictions: u64,
}

/// The counting observer: full per-table attribution of a run.
///
/// Every counter is defined so the totals reconcile *exactly*:
/// `provider_bimodal + provider_majority == predictions`,
/// `wrong_by_bimodal + wrong_by_majority == mispredictions`, the action
/// and vote-pattern arrays each sum to `predictions`, and the per-PC map
/// sums to both totals. [`Attribution::reconcile`] checks all of it
/// against the loop's own [`SimResult`] — any divergence means the
/// attribution channel and the scoreboard disagree about the same run.
#[derive(Clone, Debug, Default)]
pub struct Attribution {
    /// Dynamic conditional branches observed.
    pub predictions: u64,
    /// Observed mispredictions.
    pub mispredictions: u64,
    /// Predictions where Meta selected the bimodal side.
    pub provider_bimodal: u64,
    /// Predictions where Meta selected the e-gskew majority side.
    pub provider_majority: u64,
    /// Mispredictions delivered by the bimodal side.
    pub wrong_by_bimodal: u64,
    /// Mispredictions delivered by the majority side.
    pub wrong_by_majority: u64,
    /// Branches where the two sides disagreed (Meta's choice mattered).
    pub meta_decisive: u64,
    /// Decisive branches where Meta picked the correct side.
    pub meta_correct: u64,
    /// Branches whose update wrote the Meta table (train or strengthen).
    pub meta_writes: u64,
    /// Histogram over the 3-bit (BIM, G0, G1)-correct vote pattern;
    /// index 7 is unanimous-right, 0 unanimous-wrong (see
    /// [`Provenance::vote_pattern`]).
    pub vote_patterns: [u64; 8],
    /// Histogram over the §4.2 update action, indexed by
    /// [`UpdateAction::index`].
    pub actions: [u64; UpdateAction::COUNT],
    /// The predictor's §6 bank-collision counter (`None` for unbanked
    /// predictors, `Some(0)` for a healthy EV8 run).
    pub bank_collisions: Option<u64>,
    per_pc: HashMap<u64, PcStats>,
}

impl Attribution {
    /// An empty attribution (all counters zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct static conditional branches seen.
    pub fn static_branches(&self) -> usize {
        self.per_pc.len()
    }

    /// Per-static-branch counts for one PC, if it was seen.
    pub fn pc_stats(&self, pc: u64) -> Option<PcStats> {
        self.per_pc.get(&pc).copied()
    }

    /// The `n` static branches with the most mispredictions, descending
    /// (ties broken by ascending PC for determinism).
    pub fn top_mispredicting(&self, n: usize) -> Vec<(u64, PcStats)> {
        let mut all: Vec<(u64, PcStats)> = self.per_pc.iter().map(|(&pc, &s)| (pc, s)).collect();
        all.sort_by(|a, b| {
            b.1.mispredictions
                .cmp(&a.1.mispredictions)
                .then(a.0.cmp(&b.0))
        });
        all.truncate(n);
        all
    }

    /// Distribution of per-static-branch misprediction counts in log2
    /// buckets: `("0", …)`, `("1", …)`, `("2-3", …)`, `("4-7", …)` and so
    /// on. Bucket values count *static branches*.
    pub fn misp_histogram(&self) -> Vec<(String, u64)> {
        let mut buckets: Vec<u64> = Vec::new();
        let mut zero = 0u64;
        for s in self.per_pc.values() {
            if s.mispredictions == 0 {
                zero += 1;
                continue;
            }
            let b = 63 - s.mispredictions.leading_zeros() as usize; // floor(log2)
            if buckets.len() <= b {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        let mut out = vec![("0".to_owned(), zero)];
        for (b, &count) in buckets.iter().enumerate() {
            let lo = 1u64 << b;
            let hi = (1u64 << (b + 1)) - 1;
            let label = if lo == hi {
                lo.to_string()
            } else {
                format!("{lo}-{hi}")
            };
            out.push((label, count));
        }
        out
    }

    /// Cross-checks every attribution total against the loop's own
    /// [`SimResult`] and the §6 invariant. Returns the first discrepancy
    /// as an error string.
    pub fn reconcile(&self, result: &SimResult) -> Result<(), String> {
        let check = |name: &str, got: u64, want: u64| -> Result<(), String> {
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "{name}: attribution says {got}, result says {want}"
                ))
            }
        };
        check("predictions", self.predictions, result.conditional_branches)?;
        check("mispredictions", self.mispredictions, result.mispredictions)?;
        check(
            "provider sum",
            self.provider_bimodal + self.provider_majority,
            self.predictions,
        )?;
        check(
            "wrong-provider sum",
            self.wrong_by_bimodal + self.wrong_by_majority,
            self.mispredictions,
        )?;
        check(
            "action histogram sum",
            self.actions.iter().sum(),
            self.predictions,
        )?;
        check(
            "vote-pattern histogram sum",
            self.vote_patterns.iter().sum(),
            self.predictions,
        )?;
        check(
            "meta-correct within decisive",
            self.meta_correct.min(self.meta_decisive),
            self.meta_correct,
        )?;
        let pc_pred: u64 = self.per_pc.values().map(|s| s.predictions).sum();
        let pc_misp: u64 = self.per_pc.values().map(|s| s.mispredictions).sum();
        check("per-PC prediction sum", pc_pred, self.predictions)?;
        check("per-PC misprediction sum", pc_misp, self.mispredictions)?;
        if let Some(n) = self.bank_collisions {
            if n != 0 {
                return Err(format!(
                    "§6 violated: {n} successive-fetch-block bank collisions (must be 0)"
                ));
            }
        }
        Ok(())
    }
}

impl Observer for Attribution {
    fn on_prediction(&mut self, p: &Provenance) {
        self.predictions += 1;
        let correct = p.correct();
        if !correct {
            self.mispredictions += 1;
        }
        match p.chosen {
            ChosenComponent::Bimodal => {
                self.provider_bimodal += 1;
                if !correct {
                    self.wrong_by_bimodal += 1;
                }
            }
            ChosenComponent::Majority => {
                self.provider_majority += 1;
                if !correct {
                    self.wrong_by_majority += 1;
                }
            }
        }
        if p.meta_decisive() {
            self.meta_decisive += 1;
            if correct {
                self.meta_correct += 1;
            }
        }
        if p.meta_trained {
            self.meta_writes += 1;
        }
        self.vote_patterns[p.vote_pattern()] += 1;
        self.actions[p.action.index()] += 1;
        let e = self.per_pc.entry(p.pc.as_u64()).or_default();
        e.predictions += 1;
        if !correct {
            e.mispredictions += 1;
        }
    }

    fn on_finish(&mut self, bank_collisions: Option<u64>) {
        self.bank_collisions = bank_collisions;
    }
}

/// Streams one JSON object per prediction (plus a final summary object)
/// to any [`Write`] sink — the offline-analysis event stream.
///
/// Schema per prediction event (all outcomes as 0/1 bits):
///
/// ```json
/// {"event":"prediction","trace":"gcc","pc":4096,"outcome":1,
///  "bim":1,"g0":0,"g1":1,"majority":1,"chosen":"majority","overall":1,
///  "action":"strengthened","meta_trained":false,"bank":2}
/// ```
///
/// and the final event:
///
/// ```json
/// {"event":"finish","trace":"gcc","predictions":..,"bank_collisions":0}
/// ```
pub struct JsonlObserver<W: Write> {
    out: W,
    trace: String,
    events: u64,
    buf: String,
}

impl<W: Write> JsonlObserver<W> {
    /// Creates a stream writing to `out`, labeling every event with
    /// `trace`.
    pub fn new(out: W, trace: impl Into<String>) -> Self {
        JsonlObserver {
            out,
            trace: trace.into(),
            events: 0,
            buf: String::with_capacity(256),
        }
    }

    /// Consumes the observer and returns the sink (e.g. to recover a
    /// `Vec<u8>` buffer after the run).
    pub fn into_inner(self) -> W {
        self.out
    }

    fn emit(&mut self) {
        self.buf.push('\n');
        self.out
            .write_all(self.buf.as_bytes())
            .expect("JSONL event stream write failed");
    }
}

impl<W: Write> Observer for JsonlObserver<W> {
    fn on_prediction(&mut self, p: &Provenance) {
        self.events += 1;
        self.buf.clear();
        let mut o = JsonObject::new();
        o.field("event", &"prediction")
            .field("trace", &self.trace)
            .field("pc", &p.pc.as_u64())
            .field("outcome", &p.outcome.as_bit())
            .field("bim", &p.bim.as_bit())
            .field("g0", &p.g0.as_bit())
            .field("g1", &p.g1.as_bit())
            .field("majority", &p.majority.as_bit())
            .field(
                "chosen",
                &match p.chosen {
                    ChosenComponent::Bimodal => "bimodal",
                    ChosenComponent::Majority => "majority",
                },
            )
            .field("overall", &p.overall.as_bit())
            .field("action", &p.action.label())
            .field("meta_trained", &p.meta_trained)
            .field("bank", &p.bank);
        o.finish_into(&mut self.buf);
        self.emit();
    }

    fn on_finish(&mut self, bank_collisions: Option<u64>) {
        self.buf.clear();
        let mut o = JsonObject::new();
        o.field("event", &"finish")
            .field("trace", &self.trace)
            .field("predictions", &self.events)
            .field("bank_collisions", &bank_collisions);
        o.finish_into(&mut self.buf);
        self.emit();
        self.out.flush().expect("JSONL event stream flush failed");
    }
}

/// Runs an [`ObservedPredictor`] over a trace with immediate update,
/// delivering every conditional branch's [`Provenance`] to `observer`.
///
/// The scoreboard logic is identical to [`crate::simulate`] — same
/// record routing, same counting — and the observed predictor step is
/// state-identical to the plain one, so for any predictor implementing
/// both entry points the returned [`SimResult`] matches `simulate`'s
/// exactly (property-tested in `tests/property_invariants.rs`).
pub fn simulate_observed<P: ObservedPredictor, O: Observer>(
    mut predictor: P,
    trace: &Trace,
    observer: &mut O,
) -> SimResult {
    let mut result = SimResult {
        trace: trace.name().to_owned(),
        predictor: predictor.name(),
        instructions: trace.instruction_count(),
        ..SimResult::default()
    };
    for record in trace.iter() {
        if let Some(p) = predictor.predict_and_update_observed(record) {
            result.conditional_branches += 1;
            if p.overall != p.outcome {
                result.mispredictions += 1;
            }
            observer.on_prediction(&p);
        }
    }
    observer.on_finish(ObservedPredictor::bank_collisions(&predictor));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate;
    use ev8_core::Ev8Predictor;
    use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
    use ev8_trace::{BranchKind, BranchRecord, Pc, TraceBuilder};

    fn mixed_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("mixed");
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            b.run(x >> 58);
            let pc = Pc::new(0x1000 + (i % 23) * 0x10);
            if i % 7 == 3 {
                b.branch(BranchRecord::always_taken(
                    pc,
                    Pc::new(pc.as_u64() + 0x100),
                    BranchKind::Call,
                ));
            } else {
                b.branch(BranchRecord::conditional(
                    pc,
                    Pc::new(pc.as_u64() + 0x40),
                    (x >> 33) & 0b11 != 0,
                ));
            }
        }
        b.finish()
    }

    #[test]
    fn observed_run_matches_plain_run_for_both_predictors() {
        let t = mixed_trace(3000);
        let mut null = NullObserver;

        let plain = simulate(TwoBcGskew::new(TwoBcGskewConfig::ev8_size()), &t);
        let observed =
            simulate_observed(TwoBcGskew::new(TwoBcGskewConfig::ev8_size()), &t, &mut null);
        assert_eq!(plain, observed);

        let plain = simulate(Ev8Predictor::ev8(), &t);
        let observed = simulate_observed(Ev8Predictor::ev8(), &t, &mut null);
        assert_eq!(plain, observed);
    }

    #[test]
    fn attribution_reconciles_exactly() {
        let t = mixed_trace(5000);
        let mut attr = Attribution::new();
        let r = simulate_observed(Ev8Predictor::ev8(), &t, &mut attr);
        attr.reconcile(&r).expect("attribution must reconcile");
        assert_eq!(attr.bank_collisions, Some(0));
        assert!(attr.static_branches() > 0);
        assert!(attr.meta_correct <= attr.meta_decisive);
        assert!(attr.meta_decisive <= attr.predictions);
    }

    #[test]
    fn reconcile_detects_tampering() {
        let t = mixed_trace(500);
        let mut attr = Attribution::new();
        let r = simulate_observed(Ev8Predictor::ev8(), &t, &mut attr);
        let mut broken = attr.clone();
        broken.predictions += 1;
        assert!(broken.reconcile(&r).is_err());
        let mut broken = attr.clone();
        broken.wrong_by_majority += 1;
        assert!(broken.reconcile(&r).is_err());
        let mut broken = attr;
        broken.bank_collisions = Some(3);
        let err = broken.reconcile(&r).unwrap_err();
        assert!(err.contains("§6"), "unexpected error: {err}");
    }

    #[test]
    fn top_mispredicting_is_sorted_and_deterministic() {
        let t = mixed_trace(4000);
        let mut attr = Attribution::new();
        let r = simulate_observed(Ev8Predictor::ev8(), &t, &mut attr);
        let top = attr.top_mispredicting(5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(
                w[0].1.mispredictions > w[1].1.mispredictions
                    || (w[0].1.mispredictions == w[1].1.mispredictions && w[0].0 < w[1].0)
            );
        }
        let total_top: u64 = top.iter().map(|(_, s)| s.mispredictions).sum();
        assert!(total_top <= r.mispredictions);
        // Histogram covers every static branch once.
        let hist_total: u64 = attr.misp_histogram().iter().map(|(_, c)| c).sum();
        assert_eq!(hist_total, attr.static_branches() as u64);
    }

    #[test]
    fn tuple_observer_feeds_both_sinks() {
        let t = mixed_trace(800);
        let mut pair = (Attribution::new(), Attribution::new());
        let r = simulate_observed(Ev8Predictor::ev8(), &t, &mut pair);
        assert_eq!(pair.0.predictions, r.conditional_branches);
        assert_eq!(pair.0.predictions, pair.1.predictions);
        assert_eq!(pair.0.mispredictions, pair.1.mispredictions);
    }

    #[test]
    fn jsonl_stream_emits_one_line_per_prediction_plus_summary() {
        let t = mixed_trace(200);
        let mut obs = JsonlObserver::new(Vec::new(), t.name());
        let r = simulate_observed(Ev8Predictor::ev8(), &t, &mut obs);
        let bytes = obs.into_inner();
        let text = String::from_utf8(bytes).expect("stream is UTF-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, r.conditional_branches + 1);
        assert!(lines[0].starts_with(r#"{"event":"prediction","trace":"mixed""#));
        assert!(lines[0].contains(r#""action":"#));
        let last = lines.last().unwrap();
        assert!(last.starts_with(r#"{"event":"finish""#));
        assert!(last.contains(r#""bank_collisions":0"#));
    }
}
