//! Trace-driven simulators: immediate update and commit-time (delayed)
//! update.

use std::collections::VecDeque;

use ev8_faults::{FaultInjector, FaultLog, FaultPlan};
use ev8_predictors::introspect::FaultTarget;
use ev8_predictors::BranchPredictor;
use ev8_trace::corpus::CorpusReader;
use ev8_trace::{BranchRecord, Outcome, Trace, TraceError};

use crate::metrics::SimResult;

/// Runs a predictor over a trace with **immediate update** — the paper's
/// methodology (§8.1.1). Every record is passed to the predictor
/// ([`BranchPredictor::predict_and_update`]), so path-sensitive predictors
/// see the full control flow.
pub fn simulate<P: BranchPredictor>(mut predictor: P, trace: &Trace) -> SimResult {
    let mut result = SimResult {
        trace: trace.name().to_owned(),
        predictor: predictor.name(),
        instructions: trace.instruction_count(),
        ..SimResult::default()
    };
    for record in trace.iter() {
        if let Some(prediction) = predictor.predict_and_update(record) {
            result.conditional_branches += 1;
            if prediction != record.outcome {
                result.mispredictions += 1;
            }
        }
    }
    result
}

/// Runs a predictor over a streaming corpus decode with immediate
/// update — [`simulate`] fed from disk instead of RAM.
///
/// Chunks decode one at a time into packed [`ev8_trace::FlatTrace`]
/// blocks (see [`CorpusReader::next_block`]), so the 24 B/record AoS
/// [`Trace`] is never materialized: resident memory is one chunk
/// regardless of trace length. The per-record loop body is identical to
/// [`simulate`]'s, and the corpus totals are validated during the walk,
/// so for an uncorrupted corpus of the same trace the returned
/// [`SimResult`] is bit-identical to the in-RAM path (pinned for the
/// full Table 2 suite by `tests/corpus_pipeline.rs`).
///
/// # Errors
///
/// Propagates the first decode error ([`ev8_trace::TraceError`]) —
/// checksum mismatch, structural corruption, truncation — without
/// returning any partial result.
pub fn simulate_corpus<P: BranchPredictor, R: std::io::Read>(
    mut predictor: P,
    reader: CorpusReader<R>,
) -> Result<SimResult, TraceError> {
    let mut result = SimResult {
        trace: reader.name().to_owned(),
        predictor: predictor.name(),
        instructions: reader.instruction_count(),
        ..SimResult::default()
    };
    reader.for_each(|record| {
        if let Some(prediction) = predictor.predict_and_update(record) {
            result.conditional_branches += 1;
            if prediction != record.outcome {
                result.mispredictions += 1;
            }
        }
    })?;
    Ok(result)
}

/// Runs a predictor over a trace with immediate update while injecting
/// faults from `plan` — one injector [step](FaultInjector::step) per
/// conditional branch, *before* the branch is predicted, so a strike can
/// corrupt the very next lookup.
///
/// This is a separate entry point rather than a hook inside [`simulate`]
/// on purpose: the fault-free hot path stays byte-for-byte identical to
/// the unfaulted build (no per-branch flag test, no dead injector state),
/// which is what makes the "fault hooks are zero-cost when disabled"
/// claim checkable by construction and by the `sim_hot_loop` bench.
///
/// Faults are *soft errors*, not logical writes: they go straight to the
/// storage arrays via
/// [`FaultTarget`] and bypass the predictor's write-enable accounting, so
/// `prediction_writes`/`hysteresis_writes` in the result still count only
/// the predictor's own update traffic.
///
/// Returns the simulation result plus the injector's [`FaultLog`] (how
/// many faults landed, per array). With `plan.rate == 0.0` the result is
/// identical to [`simulate`] — the injector draws from its RNG but never
/// touches the tables.
pub fn simulate_with_faults<P: BranchPredictor + FaultTarget>(
    mut predictor: P,
    trace: &Trace,
    plan: FaultPlan,
) -> (SimResult, FaultLog) {
    let mut injector = FaultInjector::new(plan, &predictor);
    let mut result = SimResult {
        trace: trace.name().to_owned(),
        predictor: predictor.name(),
        instructions: trace.instruction_count(),
        ..SimResult::default()
    };
    for record in trace.iter() {
        if record.kind.is_conditional() {
            injector.step(&mut predictor);
        }
        if let Some(prediction) = predictor.predict_and_update(record) {
            result.conditional_branches += 1;
            if prediction != record.outcome {
                result.mispredictions += 1;
            }
        }
    }
    (result, injector.into_log())
}

/// Runs a predictor with **fully stale updates**: *both* the table write
/// and the history shift for a branch happen only after `window` further
/// conditional branches — i.e. without any speculative history update.
///
/// This is deliberately the *wrong* way to build a deep-pipeline
/// predictor: Hao, Chang and Patt (the paper's reference \[8\], recalled in
/// §3) showed that speculative history update is essential, and this
/// simulator demonstrates why — history-correlated patterns become
/// invisible when the register lags the fetch stream. The faithful
/// commit-time model (speculative history, delayed counter writes) is
/// `TwoBcGskewConfig::with_commit_window`, validated by the
/// [`crate::experiments::delayed_update`] experiment.
pub fn simulate_stale_update<P: BranchPredictor>(
    predictor: P,
    trace: &Trace,
    window: usize,
) -> SimResult {
    let mut inflight = VecDeque::with_capacity(window + 1);
    simulate_stale_update_with_scratch(predictor, trace, window, &mut inflight)
}

/// [`simulate_stale_update`] with a caller-owned in-flight queue, so
/// sweeps running many stale-update simulations (e.g. the
/// [`crate::experiments::delayed_update`] window sweep) reuse one
/// allocation instead of growing a fresh `VecDeque` per run.
///
/// The scratch is cleared on entry; its capacity (grown to at least
/// `window + 1`) is what carries over between runs.
pub fn simulate_stale_update_with_scratch<P: BranchPredictor>(
    mut predictor: P,
    trace: &Trace,
    window: usize,
    inflight: &mut VecDeque<BranchRecord>,
) -> SimResult {
    let mut result = SimResult {
        trace: trace.name().to_owned(),
        predictor: format!("{} [stale, window {window}]", predictor.name()),
        instructions: trace.instruction_count(),
        ..SimResult::default()
    };
    inflight.clear();
    if inflight.capacity() <= window {
        inflight.reserve(window + 1);
    }
    for record in trace.iter() {
        if record.kind.is_conditional() {
            let prediction = predictor.predict(record.pc);
            result.conditional_branches += 1;
            if prediction != record.outcome {
                result.mispredictions += 1;
            }
            inflight.push_back(*record);
            if inflight.len() > window {
                let commit = inflight.pop_front().expect("non-empty");
                predictor.update_record(&commit);
            }
        } else {
            predictor.note_noncond(record);
        }
    }
    while let Some(commit) = inflight.pop_front() {
        predictor.update_record(&commit);
    }
    result
}

/// A perfect predictor (always right) — gives the misp/KI floor of zero
/// and is useful for harness self-checks.
///
/// The oracle is stateless: it answers from the [`BranchRecord`] handed
/// to [`BranchPredictor::predict_and_update`], which is how [`simulate`]
/// drives it. The PC-only [`BranchPredictor::predict`] entry point has no
/// record to consult and statically answers not-taken.
#[derive(Clone, Copy, Debug, Default)]
pub struct Oracle;

impl Oracle {
    /// Creates an oracle.
    pub fn new() -> Self {
        Oracle
    }
}

impl BranchPredictor for Oracle {
    fn predict(&self, _pc: ev8_trace::Pc) -> Outcome {
        Outcome::NotTaken
    }

    fn update(&mut self, _pc: ev8_trace::Pc, _outcome: Outcome) {}

    fn predict_and_update(&mut self, record: &BranchRecord) -> Option<Outcome> {
        record.kind.is_conditional().then_some(record.outcome)
    }

    fn name(&self) -> String {
        "oracle".to_owned()
    }

    fn storage_bits(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev8_predictors::bimodal::Bimodal;
    use ev8_predictors::gshare::Gshare;
    use ev8_predictors::{AlwaysNotTaken, AlwaysTaken};
    use ev8_trace::{Pc, TraceBuilder};

    fn biased_trace(n: u64, taken_period: u64) -> Trace {
        let mut b = TraceBuilder::new("biased");
        for i in 0..n {
            b.run(5);
            b.branch(BranchRecord::conditional(
                Pc::new(0x1000),
                Pc::new(0x2000),
                i % taken_period != 0,
            ));
        }
        b.finish()
    }

    #[test]
    fn oracle_never_mispredicts() {
        let t = biased_trace(500, 3);
        let r = simulate(Oracle::new(), &t);
        assert_eq!(r.mispredictions, 0);
        assert_eq!(r.misp_per_ki(), 0.0);
        assert_eq!(r.conditional_branches, 500);
    }

    #[test]
    fn static_predictors_bound_the_range() {
        let t = biased_trace(300, 3);
        let taken = simulate(AlwaysTaken, &t);
        let not_taken = simulate(AlwaysNotTaken, &t);
        // The branch is taken 2/3 of the time.
        assert_eq!(taken.mispredictions, 100);
        assert_eq!(not_taken.mispredictions, 200);
        assert!(taken.accuracy() > not_taken.accuracy());
    }

    #[test]
    fn learning_predictor_beats_static() {
        let t = biased_trace(300, 4);
        let bimodal = simulate(Bimodal::new(10), &t);
        let taken = simulate(AlwaysTaken, &t);
        assert!(bimodal.mispredictions <= taken.mispredictions + 2);
    }

    #[test]
    fn result_counts_are_consistent() {
        let t = biased_trace(100, 2);
        let r = simulate(Bimodal::new(8), &t);
        assert_eq!(r.instructions, t.instruction_count());
        assert_eq!(r.conditional_branches, t.conditional_count());
        assert!(r.mispredictions <= r.conditional_branches);
        assert_eq!(r.trace, "biased");
    }

    #[test]
    fn stale_history_destroys_correlation() {
        // The [8] effect: a period-5 pattern is trivial for gshare with
        // up-to-date history, and unlearnable when the history register
        // lags 32 branches behind.
        let t = biased_trace(4000, 5);
        let imm = simulate(Gshare::new(12, 10), &t);
        let stale = simulate_stale_update(Gshare::new(12, 10), &t, 32);
        assert!(
            stale.mispredictions > imm.mispredictions * 5,
            "stale {} should be far worse than immediate {}",
            stale.mispredictions,
            imm.mispredictions
        );
    }

    #[test]
    fn stale_with_zero_window_equals_immediate() {
        let t = biased_trace(1000, 3);
        let imm = simulate(Gshare::new(10, 8), &t);
        let stale = simulate_stale_update(Gshare::new(10, 8), &t, 0);
        assert_eq!(imm.mispredictions, stale.mispredictions);
    }

    #[test]
    fn stale_update_spares_history_free_predictors() {
        // Bimodal has no history register, so staleness costs only the
        // slower counter warmup.
        let t = biased_trace(2000, 50);
        let imm = simulate(Bimodal::new(10), &t);
        let stale = simulate_stale_update(Bimodal::new(10), &t, 32);
        // Staleness costs at most the warmup window (the first `window`
        // predictions come from untrained counters); in steady state the
        // bimodal predictor is unaffected.
        assert!(
            stale.mispredictions <= imm.mispredictions + 32 + 5,
            "stale {} vs immediate {}",
            stale.mispredictions,
            imm.mispredictions
        );
    }

    #[test]
    fn stale_drains_inflight_at_end() {
        // A window larger than the trace still trains everything by the
        // end (drain loop), so a second pass improves.
        let t = biased_trace(50, 1000);
        let mut p = Gshare::new(10, 0);
        let first = simulate_stale_update(&mut p, &t, 1000);
        assert!(first.conditional_branches == 50);
        let second = simulate(&mut p, &t);
        assert!(second.mispredictions <= first.mispredictions);
    }

    #[test]
    fn faulted_sim_at_rate_zero_is_identical_to_plain() {
        // The zero-cost/equivalence anchor: a disabled fault plan must
        // reproduce `simulate` bit-for-bit (same mispredictions, same
        // write accounting), with zero injections logged.
        use ev8_faults::FaultPlan;
        use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
        let t = biased_trace(2000, 5);
        let plain = simulate(TwoBcGskew::new(TwoBcGskewConfig::equal(10, 10)), &t);
        let (faulted, log) = simulate_with_faults(
            TwoBcGskew::new(TwoBcGskewConfig::equal(10, 10)),
            &t,
            FaultPlan::seu(0.0).with_seed(7),
        );
        assert_eq!(log.injected(), 0);
        assert_eq!(plain.mispredictions, faulted.mispredictions);
        assert_eq!(plain.conditional_branches, faulted.conditional_branches);
    }

    #[test]
    fn heavy_seu_rate_costs_accuracy() {
        use ev8_faults::FaultPlan;
        use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
        let t = biased_trace(4000, 5);
        let clean = simulate(TwoBcGskew::new(TwoBcGskewConfig::equal(8, 8)), &t);
        // One SEU per branch into a small predictor is a blizzard; the
        // curve must move the right way, and nothing may panic.
        let (hit, log) = simulate_with_faults(
            TwoBcGskew::new(TwoBcGskewConfig::equal(8, 8)),
            &t,
            FaultPlan::seu(1.0).with_seed(3),
        );
        assert_eq!(log.injected(), hit.conditional_branches);
        assert!(
            hit.mispredictions > clean.mispredictions,
            "SEU storm {} should beat clean {}",
            hit.mispredictions,
            clean.mispredictions
        );
    }

    #[test]
    fn faulted_sim_is_deterministic() {
        use ev8_faults::FaultPlan;
        use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
        let t = biased_trace(1500, 4);
        let run = || {
            simulate_with_faults(
                TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9)),
                &t,
                FaultPlan::seu(0.05).with_seed(11),
            )
        };
        let (a, la) = run();
        let (b, lb) = run();
        assert_eq!(a.mispredictions, b.mispredictions);
        assert_eq!(la.injected(), lb.injected());
        assert_eq!(la.by_array(), lb.by_array());
    }

    #[test]
    fn commit_window_predictor_tracks_immediate() {
        // §8.1.1 in miniature: speculative history + delayed counter
        // writes stays close to immediate update.
        use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
        let t = biased_trace(4000, 5);
        let imm = simulate(TwoBcGskew::new(TwoBcGskewConfig::equal(10, 10)), &t);
        let del = simulate(
            TwoBcGskew::new(TwoBcGskewConfig::equal(10, 10).with_commit_window(64)),
            &t,
        );
        // Measure the gap against the branch count: in steady state the
        // two agree, so the difference is bounded by the warmup window.
        let gap = (imm.mispredictions as f64 - del.mispredictions as f64).abs()
            / imm.conditional_branches as f64;
        assert!(
            gap < 0.03,
            "immediate {} vs commit-window {} over {} branches",
            imm.mispredictions,
            del.mispredictions,
            imm.conditional_branches
        );
    }
}
