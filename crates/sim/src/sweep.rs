//! Parallel execution of simulation jobs.
//!
//! Experiment figures run dozens of (predictor, benchmark) simulations;
//! this module fans them out over `std::thread::scope` worker threads
//! (results come back in job order).

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// Runs `jobs` on up to `workers` threads and returns the results in job
/// order.
///
/// # Panics
///
/// Panics if `workers == 0`. If a job panics, the remaining jobs still
/// run to completion and their results are drained; then the *first*
/// panicking job's original payload is re-raised on the calling thread
/// (instead of a generic "worker panicked" double panic out of
/// `thread::scope`).
///
/// # Example
///
/// ```
/// use ev8_sim::sweep::run_parallel;
///
/// let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> =
///     (0..8u64).map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>).collect();
/// let results = run_parallel(jobs, 4);
/// assert_eq!(results[3], 9);
/// ```
pub fn run_parallel<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>, workers: usize) -> Vec<T> {
    assert!(workers > 0, "need at least one worker");
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    let (job_tx, job_rx) = mpsc::channel::<(usize, Box<dyn FnOnce() -> T + Send>)>();
    let (res_tx, res_rx) = mpsc::channel::<(usize, thread::Result<T>)>();
    for j in jobs.into_iter().enumerate() {
        job_tx.send(j).expect("queue open");
    }
    drop(job_tx);
    // `mpsc::Receiver` is single-consumer; a shared mutex turns it into the
    // work queue the workers pull from.
    let job_rx = Arc::new(Mutex::new(job_rx));

    thread::scope(|s| {
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            s.spawn(move || loop {
                // Take a job while holding the lock, then release it
                // before running the job so other workers can proceed.
                let next = job_rx.lock().expect("job queue poisoned").recv();
                match next {
                    Ok((i, job)) => {
                        // Catch a panicking job so the worker survives to
                        // run the rest of the queue; the payload is shipped
                        // back and re-raised after the drain.
                        let out = panic::catch_unwind(AssertUnwindSafe(job));
                        if res_tx.send((i, out)).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            });
        }
        drop(res_tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_panic = None;
        while let Ok((i, v)) = res_rx.recv() {
            match v {
                Ok(v) => slots[i] = Some(v),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job sent a result"))
            .collect()
    })
}

/// A sensible default worker count: the number of available CPUs, at
/// least 1, at most 8 (the experiments are memory-bandwidth heavy).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32)
            .map(|i| {
                Box::new(move || {
                    // Vary the work so completion order differs.
                    let mut acc = 0usize;
                    for k in 0..(32 - i) * 1000 {
                        acc = acc.wrapping_add(k);
                    }
                    let _ = acc;
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = run_parallel(jobs, 4);
        assert_eq!(results, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_jobs_ok() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(run_parallel(jobs, 2).is_empty());
    }

    #[test]
    fn single_worker_works() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 7), Box::new(|| 9)];
        assert_eq!(run_parallel(jobs, 1), vec![7, 9]);
    }

    #[test]
    fn more_workers_than_jobs() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 1)];
        assert_eq!(run_parallel(jobs, 16), vec![1]);
    }

    #[test]
    fn default_workers_sane() {
        let w = default_workers();
        assert!((1..=8).contains(&w));
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 1)];
        run_parallel(jobs, 0);
    }

    #[test]
    fn job_panic_propagates_original_payload() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job exploded")),
            Box::new(|| 3),
        ];
        let err = panic::catch_unwind(AssertUnwindSafe(|| run_parallel(jobs, 2)))
            .expect_err("panic must propagate");
        // The caller sees the job's own payload, not a secondary
        // "worker panicked" message.
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .expect("payload is the panic message");
        assert_eq!(msg, "job exploded");
    }

    #[test]
    fn surviving_jobs_complete_before_panic_propagates() {
        // The panicking job must not poison the queue: with one worker the
        // remaining jobs still run (observable via the shared counter) even
        // though their results are discarded by the unwind.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = (0..4u8)
            .map(|i| {
                let completed = Arc::clone(&completed);
                Box::new(move || {
                    if i == 0 {
                        panic!("early job panics");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                    i
                }) as Box<dyn FnOnce() -> u8 + Send>
            })
            .collect();
        let err = panic::catch_unwind(AssertUnwindSafe(|| run_parallel(jobs, 1)))
            .expect_err("panic must propagate");
        assert_eq!(completed.load(Ordering::SeqCst), 3);
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "early job panics");
    }
}
