//! Parallel execution of simulation jobs.
//!
//! Experiment figures run dozens of (predictor, benchmark) simulations;
//! this module fans them out over `std::thread::scope` worker threads
//! (results come back in job order).
//!
//! Two entry points share the fan-out model but differ in failure
//! handling:
//!
//! * [`run_parallel`] — the original fail-fast runner: a panicking job's
//!   payload is re-raised on the caller after the queue drains.
//! * [`run_parallel_with`] — a policy-configurable runner for long
//!   unattended sweeps (e.g. fault-injection campaigns): per-job watchdog
//!   [timeout](RunPolicy::timeout), bounded
//!   [retry](RunPolicy::max_retries) with exponential backoff and seeded
//!   jitter ([`backoff_delay`]), and an optional
//!   [degraded mode](FailureMode::Degraded) that returns the completed
//!   results plus a per-job [`JobFailure`] report instead of unwinding.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ev8_util::rng::mix;

/// Job threads abandoned by a watchdog since process start.
static ABANDONED_JOBS: AtomicU64 = AtomicU64::new(0);
/// Abandoned job threads later observed finishing (their late result
/// arrived at a collector and was discarded).
static ABANDONED_JOBS_FINISHED_LATE: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of job threads abandoned by a
/// [`run_parallel_with`] watchdog.
///
/// Abandonment leaks the thread by design (a hung computation cannot be
/// cancelled safely), which used to be *silent* — nothing distinguished
/// a process carrying dozens of zombie simulation threads from a healthy
/// one. Supervisors (the prediction server's stats endpoint, long
/// campaign reports) surface this counter so operators can see the leak
/// budget being spent. Monotonic; never reset.
pub fn abandoned_jobs() -> u64 {
    ABANDONED_JOBS.load(Ordering::Relaxed)
}

/// Process-wide count of abandoned job threads that were later seen
/// completing: their result arrived after the watchdog had settled the
/// job and was discarded.
///
/// `abandoned_jobs() - abandoned_jobs_finished_late()` bounds the number
/// of abandoned threads that may still be running right now (an upper
/// bound — a late thread that finishes after its collector returned is
/// never observed). Monotonic; never reset.
pub fn abandoned_jobs_finished_late() -> u64 {
    ABANDONED_JOBS_FINISHED_LATE.load(Ordering::Relaxed)
}

/// Runs `jobs` on up to `workers` threads and returns the results in job
/// order.
///
/// # Panics
///
/// Panics if `workers == 0`. If a job panics, the remaining jobs still
/// run to completion and their results are drained; then the *first*
/// panicking job's original payload is re-raised on the calling thread
/// (instead of a generic "worker panicked" double panic out of
/// `thread::scope`).
///
/// # Example
///
/// ```
/// use ev8_sim::sweep::run_parallel;
///
/// let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> =
///     (0..8u64).map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>).collect();
/// let results = run_parallel(jobs, 4);
/// assert_eq!(results[3], 9);
/// ```
pub fn run_parallel<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>, workers: usize) -> Vec<T> {
    assert!(workers > 0, "need at least one worker");
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    let (job_tx, job_rx) = mpsc::channel::<(usize, Box<dyn FnOnce() -> T + Send>)>();
    let (res_tx, res_rx) = mpsc::channel::<(usize, thread::Result<T>)>();
    for j in jobs.into_iter().enumerate() {
        job_tx.send(j).expect("queue open");
    }
    drop(job_tx);
    // `mpsc::Receiver` is single-consumer; a shared mutex turns it into the
    // work queue the workers pull from.
    let job_rx = Arc::new(Mutex::new(job_rx));

    thread::scope(|s| {
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            s.spawn(move || loop {
                // Take a job while holding the lock, then release it
                // before running the job so other workers can proceed.
                let next = job_rx.lock().expect("job queue poisoned").recv();
                match next {
                    Ok((i, job)) => {
                        // Catch a panicking job so the worker survives to
                        // run the rest of the queue; the payload is shipped
                        // back and re-raised after the drain.
                        let out = panic::catch_unwind(AssertUnwindSafe(job));
                        if res_tx.send((i, out)).is_err() {
                            return;
                        }
                    }
                    Err(_) => return,
                }
            });
        }
        drop(res_tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut first_panic = None;
        while let Ok((i, v)) = res_rx.recv() {
            match v {
                Ok(v) => slots[i] = Some(v),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job sent a result"))
            .collect()
    })
}

/// What `run_parallel_with` does once a job has exhausted its attempts
/// (or its watchdog expired).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FailureMode {
    /// Match [`run_parallel`]: drain what can still complete, then
    /// re-raise the first failure on the caller (a panic payload is
    /// resumed verbatim; a timeout becomes a descriptive panic).
    #[default]
    FailFast,
    /// Never unwind: return a [`RunOutcome`] carrying every completed
    /// result plus a [`JobFailure`] per job that did not.
    Degraded,
}

/// Failure policy for [`run_parallel_with`].
///
/// The default is indistinguishable from [`run_parallel`]: no watchdog,
/// no retries, fail-fast.
#[derive(Clone, Copy, Debug)]
pub struct RunPolicy {
    /// Per-job wall-clock budget covering *all* attempts (work plus
    /// backoff sleeps). `None` disables the watchdog. A job that blows
    /// the budget is abandoned: its thread is detached and any result it
    /// produces later is discarded.
    pub timeout: Option<Duration>,
    /// How many times a panicking job is re-run after its first attempt.
    /// `0` means one attempt, no retries.
    pub max_retries: u32,
    /// Base delay for [`backoff_delay`]; retry `k` sleeps
    /// `base * 2^(k-1)` plus seeded jitter in `[0, base)`.
    pub backoff_base: Duration,
    /// Seed for the backoff jitter (and nothing else — jobs own their
    /// own randomness).
    pub seed: u64,
    /// Fail-fast (default) or degraded-results mode.
    pub mode: FailureMode,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            timeout: None,
            max_retries: 0,
            backoff_base: Duration::from_millis(100),
            seed: 0,
            mode: FailureMode::FailFast,
        }
    }
}

impl RunPolicy {
    /// Returns the policy with a per-job watchdog timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Returns the policy with up to `retries` re-runs per panicking job,
    /// backed off from `base`.
    pub fn with_retries(mut self, retries: u32, base: Duration) -> Self {
        self.max_retries = retries;
        self.backoff_base = base;
        self
    }

    /// Returns the policy with the given backoff-jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the policy in degraded-results mode.
    pub fn degraded(mut self) -> Self {
        self.mode = FailureMode::Degraded;
        self
    }
}

/// Why a job failed under [`run_parallel_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// Every attempt panicked; `message` is extracted from the final
    /// payload (`&str`/`String` payloads verbatim, otherwise a
    /// placeholder).
    Panicked {
        /// Attempts made (1 + retries taken).
        attempts: u32,
        /// The final panic message.
        message: String,
    },
    /// The watchdog expired before the job produced a result; its thread
    /// was abandoned.
    TimedOut {
        /// The configured budget that was exceeded.
        after: Duration,
    },
}

/// One failed job in a [`RunOutcome`] report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the job in the submitted vector.
    pub job: usize,
    /// What went wrong.
    pub cause: FailureCause,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cause {
            FailureCause::Panicked { attempts, message } => {
                write!(
                    f,
                    "job {} panicked after {attempts} attempt(s): {message}",
                    self.job
                )
            }
            FailureCause::TimedOut { after } => {
                write!(f, "job {} timed out after {after:?}", self.job)
            }
        }
    }
}

/// The result of a [`run_parallel_with`] run.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Per-job results in submission order; `None` where the job failed.
    pub results: Vec<Option<T>>,
    /// One entry per failed job, sorted by job index.
    pub failures: Vec<JobFailure>,
}

impl<T> RunOutcome<T> {
    /// Whether every job completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// How many jobs in this run were reaped by the watchdog (each one
    /// also bumped the process-wide [`abandoned_jobs`] counter).
    pub fn timed_out(&self) -> usize {
        self.failures
            .iter()
            .filter(|f| matches!(f.cause, FailureCause::TimedOut { .. }))
            .count()
    }

    /// Unwraps into the plain result vector.
    ///
    /// # Panics
    ///
    /// Panics (listing the failures) if any job failed.
    pub fn into_complete(self) -> Vec<T> {
        assert!(
            self.failures.is_empty(),
            "{} job(s) failed: {}",
            self.failures.len(),
            self.failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
        self.results
            .into_iter()
            .map(|r| r.expect("no failures recorded, so every slot is filled"))
            .collect()
    }
}

/// The delay slept before retry `attempt` (1-based: the delay after the
/// first failed attempt is `attempt = 1`) of job `job`.
///
/// Exponential with full-ratio seeded jitter:
/// `base * 2^(attempt-1) + jitter`, `jitter ∈ [0, base)` drawn
/// deterministically from `(seed, job, attempt)` via the SplitMix64
/// mixer — so a fleet of retrying jobs staggers instead of
/// thundering back in lockstep, yet every schedule is reproducible
/// from the policy seed.
pub fn backoff_delay(base: Duration, seed: u64, job: usize, attempt: u32) -> Duration {
    let attempt = attempt.max(1);
    // Cap the shift: past 2^20 the exponential term saturates anyway.
    let factor = 1u32 << (attempt - 1).min(20);
    let exp = base.saturating_mul(factor);
    let base_nanos = base.as_nanos().min(u128::from(u64::MAX)) as u64;
    if base_nanos == 0 {
        return exp;
    }
    let jitter = mix(seed ^ mix(job as u64).wrapping_add(u64::from(attempt))) % base_nanos;
    exp.saturating_add(Duration::from_nanos(jitter))
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Spawns one detached job thread that retries per the policy and ships
/// `(job, attempts, result)` back; the thread is *not* joined, so a hung
/// job can be abandoned by the collector.
fn spawn_job<T: Send + 'static>(
    index: usize,
    job: Box<dyn Fn() -> T + Send + 'static>,
    tx: mpsc::Sender<(usize, u32, thread::Result<T>)>,
    max_retries: u32,
    backoff_base: Duration,
    seed: u64,
) {
    thread::spawn(move || {
        let mut attempt = 1u32;
        loop {
            match panic::catch_unwind(AssertUnwindSafe(&job)) {
                Ok(v) => {
                    let _ = tx.send((index, attempt, Ok(v)));
                    return;
                }
                Err(payload) => {
                    if attempt > max_retries {
                        let _ = tx.send((index, attempt, Err(payload)));
                        return;
                    }
                    thread::sleep(backoff_delay(backoff_base, seed, index, attempt));
                    attempt += 1;
                }
            }
        }
    });
}

/// Runs `jobs` on up to `workers` detached threads under `policy` and
/// returns a [`RunOutcome`] (results in job order).
///
/// Jobs are `Fn` rather than `FnOnce` so a panicking job can be retried
/// in place; they must be `'static` because a job that outlives its
/// watchdog budget is abandoned, not joined (the thread keeps running
/// detached until it finishes or the process exits — deliberate: there
/// is no safe way to cancel a hung computation, and leaking a thread is
/// the price of returning at all).
///
/// # Panics
///
/// Panics if `workers == 0`. Under [`FailureMode::FailFast`] (the
/// default) the first failure is re-raised after the drain, exactly like
/// [`run_parallel`]; under [`FailureMode::Degraded`] failures are
/// reported in the outcome instead.
///
/// # Example
///
/// ```
/// use ev8_sim::sweep::{run_parallel_with, RunPolicy};
///
/// let jobs: Vec<Box<dyn Fn() -> u64 + Send>> =
///     (0..8u64).map(|i| Box::new(move || i * i) as Box<dyn Fn() -> u64 + Send>).collect();
/// let outcome = run_parallel_with(jobs, 4, &RunPolicy::default());
/// assert_eq!(outcome.into_complete()[3], 9);
/// ```
pub fn run_parallel_with<T: Send + 'static>(
    jobs: Vec<Box<dyn Fn() -> T + Send + 'static>>,
    workers: usize,
    policy: &RunPolicy,
) -> RunOutcome<T> {
    assert!(workers > 0, "need at least one worker");
    let n = jobs.len();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut failures: Vec<JobFailure> = Vec::new();
    if n == 0 {
        return RunOutcome { results, failures };
    }
    let workers = workers.min(n);

    let (res_tx, res_rx) = mpsc::channel::<(usize, u32, thread::Result<T>)>();
    let mut queue = jobs.into_iter().enumerate();
    // Deadline per in-flight job (`None` = not running); a settled job
    // ignores late results from its abandoned thread.
    let mut deadlines: Vec<Option<Instant>> = (0..n).map(|_| None).collect();
    let mut settled = vec![false; n];
    let mut in_flight = 0usize;
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    let mut first_timeout: Option<JobFailure> = None;

    let launch_next = |queue: &mut std::iter::Enumerate<std::vec::IntoIter<_>>,
                       deadlines: &mut Vec<Option<Instant>>,
                       in_flight: &mut usize| {
        if let Some((i, job)) = queue.next() {
            deadlines[i] = Some(match policy.timeout {
                Some(t) => Instant::now() + t,
                // Far-future sentinel keeps the deadline arithmetic
                // uniform; it is never awaited because `wait` below is
                // `None` when no watchdog is configured.
                None => Instant::now() + Duration::from_secs(u32::MAX as u64),
            });
            *in_flight += 1;
            spawn_job(
                i,
                job,
                res_tx.clone(),
                policy.max_retries,
                policy.backoff_base,
                policy.seed,
            );
        }
    };

    for _ in 0..workers {
        launch_next(&mut queue, &mut deadlines, &mut in_flight);
    }

    while in_flight > 0 {
        let received = match policy.timeout {
            None => res_rx
                .recv()
                .map_err(|_| mpsc::RecvTimeoutError::Disconnected),
            Some(_) => {
                let nearest = deadlines
                    .iter()
                    .flatten()
                    .min()
                    .copied()
                    .expect("in_flight > 0 implies a deadline");
                res_rx.recv_timeout(nearest.saturating_duration_since(Instant::now()))
            }
        };
        match received {
            Ok((i, attempts, out)) => {
                if settled[i] {
                    // Late result from a thread abandoned by the
                    // watchdog; the job already counts as failed, but
                    // the leaked thread is now known to have finished.
                    ABANDONED_JOBS_FINISHED_LATE.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                settled[i] = true;
                deadlines[i] = None;
                in_flight -= 1;
                match out {
                    Ok(v) => results[i] = Some(v),
                    Err(payload) => {
                        failures.push(JobFailure {
                            job: i,
                            cause: FailureCause::Panicked {
                                attempts,
                                message: panic_message(payload.as_ref()),
                            },
                        });
                        if first_panic.is_none() {
                            first_panic = Some(payload);
                        }
                    }
                }
                launch_next(&mut queue, &mut deadlines, &mut in_flight);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let now = Instant::now();
                let after = policy.timeout.expect("recv_timeout implies a watchdog");
                for i in 0..n {
                    if deadlines[i].is_some_and(|d| d <= now) {
                        settled[i] = true;
                        deadlines[i] = None;
                        in_flight -= 1;
                        ABANDONED_JOBS.fetch_add(1, Ordering::Relaxed);
                        let failure = JobFailure {
                            job: i,
                            cause: FailureCause::TimedOut { after },
                        };
                        if first_timeout.is_none() {
                            first_timeout = Some(failure.clone());
                        }
                        failures.push(failure);
                        launch_next(&mut queue, &mut deadlines, &mut in_flight);
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("collector holds a live sender; the channel cannot disconnect")
            }
        }
    }

    if policy.mode == FailureMode::FailFast {
        // Mirror `run_parallel`: the first failure (in completion order)
        // wins, and a panic payload is re-raised verbatim.
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }
        if let Some(failure) = first_timeout {
            panic!("{failure}");
        }
    }

    failures.sort_by_key(|f| f.job);
    RunOutcome { results, failures }
}

/// A sensible default worker count: the number of available CPUs, at
/// least 1, at most 8 (the experiments are memory-bandwidth heavy).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32)
            .map(|i| {
                Box::new(move || {
                    // Vary the work so completion order differs.
                    let mut acc = 0usize;
                    for k in 0..(32 - i) * 1000 {
                        acc = acc.wrapping_add(k);
                    }
                    let _ = acc;
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = run_parallel(jobs, 4);
        assert_eq!(results, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_jobs_ok() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(run_parallel(jobs, 2).is_empty());
    }

    #[test]
    fn single_worker_works() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 7), Box::new(|| 9)];
        assert_eq!(run_parallel(jobs, 1), vec![7, 9]);
    }

    #[test]
    fn more_workers_than_jobs() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 1)];
        assert_eq!(run_parallel(jobs, 16), vec![1]);
    }

    #[test]
    fn default_workers_sane() {
        let w = default_workers();
        assert!((1..=8).contains(&w));
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 1)];
        run_parallel(jobs, 0);
    }

    #[test]
    fn job_panic_propagates_original_payload() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("job exploded")),
            Box::new(|| 3),
        ];
        let err = panic::catch_unwind(AssertUnwindSafe(|| run_parallel(jobs, 2)))
            .expect_err("panic must propagate");
        // The caller sees the job's own payload, not a secondary
        // "worker panicked" message.
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .expect("payload is the panic message");
        assert_eq!(msg, "job exploded");
    }

    fn fn_jobs<T, F>(fns: Vec<F>) -> Vec<Box<dyn Fn() -> T + Send>>
    where
        F: Fn() -> T + Send + 'static,
    {
        fns.into_iter()
            .map(|f| Box::new(f) as Box<dyn Fn() -> T + Send>)
            .collect()
    }

    #[test]
    fn policy_default_matches_run_parallel_semantics() {
        let jobs: Vec<Box<dyn Fn() -> usize + Send>> = (0..16usize)
            .map(|i| Box::new(move || i * 3) as Box<dyn Fn() -> usize + Send>)
            .collect();
        let outcome = run_parallel_with(jobs, 4, &RunPolicy::default());
        assert!(outcome.is_complete());
        assert_eq!(
            outcome.into_complete(),
            (0..16).map(|i| i * 3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn policy_zero_jobs_is_empty_outcome() {
        for policy in [RunPolicy::default(), RunPolicy::default().degraded()] {
            let jobs: Vec<Box<dyn Fn() -> u8 + Send>> = Vec::new();
            let outcome = run_parallel_with(jobs, 2, &policy);
            assert!(outcome.results.is_empty());
            assert!(outcome.failures.is_empty());
            assert!(outcome.into_complete().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn policy_zero_workers_rejected() {
        let jobs: Vec<Box<dyn Fn() -> u8 + Send>> = vec![Box::new(|| 1)];
        run_parallel_with(jobs, 0, &RunPolicy::default());
    }

    #[test]
    fn policy_multiple_panicking_jobs_first_payload_wins() {
        // One worker makes completion order deterministic: job 0 panics
        // first, and its payload — not job 2's — must reach the caller.
        let jobs: Vec<Box<dyn Fn() -> u8 + Send>> = vec![
            Box::new(|| panic!("first explosion")),
            Box::new(|| 1),
            Box::new(|| panic!("second explosion")),
        ];
        let err = panic::catch_unwind(AssertUnwindSafe(|| {
            run_parallel_with(jobs, 1, &RunPolicy::default())
        }))
        .expect_err("fail-fast must re-raise");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .expect("payload is the panic message");
        assert_eq!(msg, "first explosion");
    }

    #[test]
    fn policy_degraded_mode_collects_survivors_and_reports_failures() {
        let jobs: Vec<Box<dyn Fn() -> u8 + Send>> = vec![
            Box::new(|| 10),
            Box::new(|| panic!("job 1 broke")),
            Box::new(|| 30),
            Box::new(|| panic!("job 3 broke")),
        ];
        let outcome = run_parallel_with(jobs, 2, &RunPolicy::default().degraded());
        assert!(!outcome.is_complete());
        assert_eq!(outcome.results[0], Some(10));
        assert_eq!(outcome.results[1], None);
        assert_eq!(outcome.results[2], Some(30));
        assert_eq!(outcome.results[3], None);
        assert_eq!(outcome.failures.len(), 2);
        assert_eq!(outcome.failures[0].job, 1);
        assert_eq!(
            outcome.failures[0].cause,
            FailureCause::Panicked {
                attempts: 1,
                message: "job 1 broke".to_string()
            }
        );
        assert_eq!(outcome.failures[1].job, 3);
        assert!(outcome.failures[1].to_string().contains("job 3 broke"));
    }

    #[test]
    fn policy_timeout_fires_on_hung_job() {
        let policy = RunPolicy::default()
            .with_timeout(Duration::from_millis(100))
            .degraded();
        let jobs = fn_jobs(vec![
            (|| 7u8) as fn() -> u8,
            // Hung job: the watchdog must abandon it. The detached
            // thread sleeps out the rest of the test process harmlessly.
            (|| {
                thread::sleep(Duration::from_secs(3600));
                0
            }) as fn() -> u8,
            (|| 9u8) as fn() -> u8,
        ]);
        let start = Instant::now();
        let outcome = run_parallel_with(jobs, 3, &policy);
        // The timed-out job must not stall the caller anywhere near its
        // own (hour-long) runtime.
        assert!(start.elapsed() < Duration::from_secs(30));
        assert_eq!(outcome.results[0], Some(7));
        assert_eq!(outcome.results[1], None);
        assert_eq!(outcome.results[2], Some(9));
        assert_eq!(outcome.failures.len(), 1);
        assert_eq!(outcome.failures[0].job, 1);
        assert_eq!(
            outcome.failures[0].cause,
            FailureCause::TimedOut {
                after: Duration::from_millis(100)
            }
        );
    }

    #[test]
    fn watchdog_reaps_bump_the_abandonment_counter() {
        // The counters are process-global and shared with every other
        // test in this binary, so assert monotonic deltas, not values.
        let before = abandoned_jobs();
        let policy = RunPolicy::default()
            .with_timeout(Duration::from_millis(80))
            .degraded();
        let jobs = fn_jobs(vec![
            (|| 1u8) as fn() -> u8,
            (|| {
                thread::sleep(Duration::from_secs(3600));
                0
            }) as fn() -> u8,
            (|| {
                thread::sleep(Duration::from_secs(3600));
                0
            }) as fn() -> u8,
        ]);
        let outcome = run_parallel_with(jobs, 3, &policy);
        assert_eq!(outcome.timed_out(), 2);
        assert_eq!(outcome.failures.len(), 2);
        let after = abandoned_jobs();
        assert!(
            after >= before + 2,
            "expected at least 2 new abandonments, saw {before} -> {after}"
        );
    }

    #[test]
    fn clean_run_reports_zero_timed_out() {
        let outcome = run_parallel_with(
            fn_jobs(vec![(|| 1u8) as fn() -> u8, (|| 2u8) as fn() -> u8]),
            2,
            &RunPolicy::default().degraded(),
        );
        assert_eq!(outcome.timed_out(), 0);
        assert!(outcome.is_complete());
    }

    #[test]
    fn late_finishing_abandoned_thread_is_counted() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let before_late = abandoned_jobs_finished_late();
        let reaped_job_done = Arc::new(AtomicBool::new(false));
        let setter = Arc::clone(&reaped_job_done);
        let waiter = Arc::clone(&reaped_job_done);
        // One worker: job 0 outlives the watchdog and is abandoned at
        // ~400 ms, which launches job 1. Job 1 holds the collector open
        // until job 0's thread has finished (~600 ms), so the late result
        // is still drained — and must be counted — before the run ends.
        let jobs: Vec<Box<dyn Fn() -> u8 + Send>> = vec![
            Box::new(move || {
                thread::sleep(Duration::from_millis(600));
                setter.store(true, Ordering::SeqCst);
                0
            }),
            Box::new(move || {
                while !waiter.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(5));
                }
                // Slack for the late result to reach the collector first.
                thread::sleep(Duration::from_millis(100));
                1
            }),
        ];
        let policy = RunPolicy::default()
            .with_timeout(Duration::from_millis(400))
            .degraded();
        let outcome = run_parallel_with(jobs, 1, &policy);
        assert_eq!(outcome.timed_out(), 1);
        assert_eq!(outcome.results[1], Some(1));
        let after_late = abandoned_jobs_finished_late();
        assert!(
            after_late > before_late,
            "late finish not counted: {before_late} -> {after_late}"
        );
        // The process-wide bound stays consistent: threads seen finishing
        // late can never outnumber threads abandoned.
        assert!(abandoned_jobs_finished_late() <= abandoned_jobs());
    }

    #[test]
    fn policy_timeout_in_fail_fast_panics_with_job_index() {
        let policy = RunPolicy::default().with_timeout(Duration::from_millis(50));
        let jobs = fn_jobs(vec![
            (|| {
                thread::sleep(Duration::from_secs(3600));
                0u8
            }) as fn() -> u8,
        ]);
        let err = panic::catch_unwind(AssertUnwindSafe(|| run_parallel_with(jobs, 1, &policy)))
            .expect_err("timeout must fail fast");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("timeout panic carries a formatted message");
        assert!(msg.contains("job 0 timed out"), "unexpected message: {msg}");
    }

    #[test]
    fn policy_retry_then_succeed_with_deterministic_backoff() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let attempts = Arc::new(AtomicU32::new(0));
        let job_attempts = Arc::clone(&attempts);
        let jobs: Vec<Box<dyn Fn() -> u32 + Send>> = vec![Box::new(move || {
            let n = job_attempts.fetch_add(1, Ordering::SeqCst) + 1;
            if n < 3 {
                panic!("transient failure {n}");
            }
            n
        })];
        let policy = RunPolicy::default()
            .with_retries(3, Duration::from_millis(1))
            .with_seed(9)
            .degraded();
        let outcome = run_parallel_with(jobs, 1, &policy);
        assert!(outcome.is_complete());
        assert_eq!(outcome.results[0], Some(3));
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn policy_exhausted_retries_report_attempt_count() {
        let policy = RunPolicy::default()
            .with_retries(2, Duration::from_micros(100))
            .degraded();
        let jobs: Vec<Box<dyn Fn() -> u8 + Send>> = vec![Box::new(|| panic!("always broken"))];
        let outcome = run_parallel_with(jobs, 1, &policy);
        assert_eq!(
            outcome.failures[0].cause,
            FailureCause::Panicked {
                attempts: 3,
                message: "always broken".to_string()
            }
        );
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_exponential() {
        let base = Duration::from_millis(10);
        for attempt in 1..=4u32 {
            let d = backoff_delay(base, 9, 0, attempt);
            // Same (seed, job, attempt) → identical delay, forever.
            assert_eq!(d, backoff_delay(base, 9, 0, attempt));
            // Exponential envelope with jitter in [0, base).
            let floor = base * (1 << (attempt - 1));
            assert!(d >= floor, "attempt {attempt}: {d:?} < {floor:?}");
            assert!(
                d < floor + base,
                "attempt {attempt}: {d:?} >= {:?}",
                floor + base
            );
        }
        // Different jobs (and seeds) jitter differently — the whole point
        // of seeding the schedule.
        let spread: std::collections::HashSet<Duration> =
            (0..16).map(|job| backoff_delay(base, 9, job, 1)).collect();
        assert!(spread.len() > 1, "jitter collapsed to a single delay");
        assert_ne!(backoff_delay(base, 1, 0, 1), backoff_delay(base, 2, 0, 1));
        // Degenerate base: no jitter, no panic.
        assert_eq!(backoff_delay(Duration::ZERO, 9, 0, 1), Duration::ZERO);
        // Huge attempt numbers saturate instead of overflowing.
        let huge = backoff_delay(base, 9, 0, 4_000_000);
        assert!(huge >= base * (1 << 20));
    }

    #[test]
    fn surviving_jobs_complete_before_panic_propagates() {
        // The panicking job must not poison the queue: with one worker the
        // remaining jobs still run (observable via the shared counter) even
        // though their results are discarded by the unwind.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let completed = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = (0..4u8)
            .map(|i| {
                let completed = Arc::clone(&completed);
                Box::new(move || {
                    if i == 0 {
                        panic!("early job panics");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                    i
                }) as Box<dyn FnOnce() -> u8 + Send>
            })
            .collect();
        let err = panic::catch_unwind(AssertUnwindSafe(|| run_parallel(jobs, 1)))
            .expect_err("panic must propagate");
        assert_eq!(completed.load(Ordering::SeqCst), 3);
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "early job panics");
    }
}
