//! Batched multi-configuration simulation over a [`FlatTrace`].
//!
//! The paper's evaluation is a grid: every figure runs many predictor
//! configurations over the same traces. Serial sweeps pay the trace's
//! memory traffic once *per configuration*; [`simulate_many`] decodes
//! each record once and steps all K configurations on it before moving
//! to the next, so the trace streams through the cache a single time
//! regardless of K. Combined with the packed [`FlatTrace`] layout
//! (~10 bytes/record instead of 24) this is the workspace's sweep
//! engine: parallelism covers benchmarks (`sweep::run_parallel`),
//! batching covers configurations.
//!
//! # Why results are bit-identical to serial runs
//!
//! Each configuration owns its own predictor state; the only shared
//! input is the trace, which is read-only. Interleaving the K state
//! machines over one record stream therefore performs exactly the same
//! sequence of (record, state) transitions each machine would see alone,
//! and [`FlatTrace`] iteration reconstructs records bit-identically to
//! the source [`Trace`](ev8_trace::Trace) (pinned by its unit tests). So
//! `simulate_many(&mut [p1, .., pK], &flat)` returns exactly what K
//! serial [`simulate`](crate::simulate) calls would — the workspace
//! equivalence suite (`tests/batched_equivalence.rs`) asserts this over
//! arbitrary generated traces, including the predictors'
//! write-accounting counters, and `tests/golden_misp.rs` pins the
//! batched path against the golden fixture.
//!
//! # Example
//!
//! ```
//! use ev8_predictors::bimodal::Bimodal;
//! use ev8_predictors::gshare::Gshare;
//! use ev8_predictors::BranchPredictor;
//! use ev8_sim::batch::simulate_many;
//! use ev8_trace::{BranchRecord, FlatTrace, Pc, TraceBuilder};
//!
//! let mut b = TraceBuilder::new("demo");
//! for i in 0..100u64 {
//!     b.branch(BranchRecord::conditional(Pc::new(0x40), Pc::new(0x80), i % 3 != 0));
//! }
//! let flat = FlatTrace::from_trace(&b.finish());
//! let mut configs: Vec<Box<dyn BranchPredictor>> =
//!     vec![Box::new(Bimodal::new(10)), Box::new(Gshare::new(10, 8))];
//! let results = simulate_many(&mut configs, &flat);
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].conditional_branches, 100);
//! ```

use ev8_predictors::bitvec::Counter2Table;
use ev8_predictors::gshare::Gshare;
use ev8_predictors::BranchPredictor;
use ev8_trace::{FlatTrace, Outcome};

use crate::metrics::SimResult;

/// Runs one predictor over a [`FlatTrace`] with immediate update —
/// exactly [`simulate`](crate::simulate) but streaming the packed
/// columns instead of the AoS record array.
///
/// The `sim_hot_loop` bench records the flat-vs-AoS single-config
/// speedup under the `sweep_batched` group.
pub fn simulate_flat<P: BranchPredictor>(mut predictor: P, trace: &FlatTrace) -> SimResult {
    let mut result = SimResult {
        trace: trace.name().to_owned(),
        predictor: predictor.name(),
        instructions: trace.instruction_count(),
        ..SimResult::default()
    };
    trace.for_each(|record| {
        if let Some(prediction) = predictor.predict_and_update(record) {
            result.conditional_branches += 1;
            result.mispredictions += u64::from(prediction != record.outcome);
        }
    });
    result
}

/// Steps K predictor configurations over a [`FlatTrace`] in one pass,
/// returning one [`SimResult`] per configuration, in input order,
/// bit-identical to K serial [`simulate`](crate::simulate) calls (see
/// the module docs for why).
///
/// `predictors` is borrowed mutably rather than consumed so callers can
/// inspect post-run state (e.g. write-accounting counters) — pass
/// `&mut [Box<dyn BranchPredictor>]` for heterogeneous sweeps or
/// `&mut [concrete]` for homogeneous ones.
///
/// All per-result allocations (trace name, predictor names) happen
/// before the hot loop; the loop itself touches only the packed trace
/// columns, the predictor state, and two flat counter arrays.
pub fn simulate_many<P: BranchPredictor>(
    predictors: &mut [P],
    trace: &FlatTrace,
) -> Vec<SimResult> {
    let k = predictors.len();
    let mut results: Vec<SimResult> = predictors
        .iter()
        .map(|p| SimResult {
            trace: trace.name().to_owned(),
            predictor: p.name(),
            instructions: trace.instruction_count(),
            ..SimResult::default()
        })
        .collect();
    // Hot counters live apart from the string-bearing results so the
    // loop never touches the heap-allocated name fields. The config
    // loop zips predictors with their counters (no index arithmetic, no
    // bounds checks), the K predictor bodies carry no data dependencies
    // between each other, and the misprediction tally is branchless.
    let mut counts = vec![(0u64, 0u64); k];
    trace.for_each(|record| {
        for (predictor, (conditional, mispredicted)) in predictors.iter_mut().zip(counts.iter_mut())
        {
            if let Some(prediction) = predictor.predict_and_update(record) {
                *conditional += 1;
                *mispredicted += u64::from(prediction != record.outcome);
            }
        }
    });
    for (result, (conditional, mispredicted)) in results.iter_mut().zip(counts) {
        result.conditional_branches = conditional;
        result.mispredictions = mispredicted;
    }
    results
}

/// Runs a gshare history-length sweep — the Fig 6/7 sweep axis: one
/// table geometry, many history lengths — over a [`FlatTrace`] in one
/// pass, bit-identical to `histories.len()` serial
/// [`simulate`](crate::simulate)`(Gshare::new(index_bits, h), ..)` calls.
///
/// This is the sweep engine's specialized path, and it is where batching
/// buys more than amortized trace decode: the global history register is
/// derived from trace outcomes alone, never from predictor state, so
/// every configuration in a history-length sweep observes the *same*
/// register and differs only in how many low bits it reads. A serial
/// sweep must re-maintain that register once per configuration, and
/// must re-decode every record (kind dispatch, gap/PC unpacking) once
/// per configuration; this path pays for decode exactly once, up front,
/// by projecting the conditional records into a dense one-u32-per-branch
/// stream, then keeps one shared register plus one shared PC index
/// field per branch and leaves only three operations per
/// configuration per branch — mask, fold-XOR into the index, and the
/// counter read-modify-write (with a branchless misprediction
/// increment; the conditional-branch count is config-invariant and
/// comes from the trace itself). For history lengths at most
/// `2 * index_bits` (every sweep in the paper's figures) the XOR fold
/// reduces to the branchless two-chunk form `(h & m) ^ (h >> index_bits)`;
/// longer histories fall back to the general engine
/// ([`simulate_many`]), which handles any configuration mix.
///
/// # Why this is bit-identical to serial
///
/// * Masking the rolling register at use (`hist & mask_h`) equals
///   masking it at every push, because the mask is a contiguous low-bit
///   mask: bits above position `h` can never flow back down.
/// * The two-chunk fold equals [`xor_fold64`](ev8_predictors::skew::xor_fold64)
///   whenever the value fits in `2 * index_bits` bits, which the
///   fallback guard guarantees.
/// * [`Gshare::predict_and_update`] computes its index before pushing
///   history and only touches history on conditional records — mirrored
///   exactly here, and pinned by the unit tests below plus the
///   workspace equivalence suite.
///
/// # Panics
///
/// Panics if `index_bits` is outside `1..=30` or any history length
/// exceeds 64 (the same bounds [`Gshare::new`] enforces).
pub fn simulate_gshare_sweep(
    index_bits: u32,
    histories: &[u32],
    trace: &FlatTrace,
) -> Vec<SimResult> {
    if histories.iter().any(|&h| h > 2 * index_bits) {
        let mut configs: Vec<Gshare> = histories
            .iter()
            .map(|&h| Gshare::new(index_bits, h))
            .collect();
        return simulate_many(&mut configs, trace);
    }

    let mut results: Vec<SimResult> = histories
        .iter()
        .map(|&h| SimResult {
            trace: trace.name().to_owned(),
            // Matches Gshare::name() without allocating a table per
            // config just to ask its name; pinned by the equivalence
            // tests against serial Gshare runs.
            predictor: format!("gshare {}K entries, h={h}", (1u64 << index_bits) / 1024),
            instructions: trace.instruction_count(),
            ..SimResult::default()
        })
        .collect();

    let mut tables: Vec<Counter2Table> = histories
        .iter()
        .map(|_| Counter2Table::new(index_bits))
        .collect();
    let masks: Vec<u64> = histories.iter().map(|&h| (1u64 << h) - 1).collect();
    // Per-config state is mispredictions alone: the conditional-branch
    // count is a property of the trace, identical for every config, and
    // already maintained by the flat view — so the inner loop carries
    // one branchless add per config per branch and nothing else.
    let mut misps: Vec<u64> = vec![0; histories.len()];
    let low_mask = (1u64 << index_bits) - 1;

    // One decode pass shared by every configuration: project the
    // conditional records into a dense stream of one u32 each — the
    // masked PC index field in the low bits, the outcome in bit 31
    // (index_bits caps at 30, so the two never collide). A serial sweep
    // re-decodes every record (kind check, gap/PC unpacking) once per
    // configuration; here even the single batched pass stops paying for
    // it, and the hot loop below becomes a plain slice walk with no
    // closure call, no branch-kind test and one load of shared input
    // per branch.
    let mut stream: Vec<u32> = Vec::with_capacity(trace.conditional_count() as usize);
    trace.for_each_conditional(|pc_shifted, outcome| {
        let pcb = (pc_shifted & low_mask) as u32;
        stream.push(pcb | (u32::from(outcome.is_taken()) << 31));
    });

    let mut hist: u64 = 0;
    for &enc in &stream {
        let taken = enc >> 31;
        let pc_bits = u64::from(enc & 0x7FFF_FFFF);
        let outcome = Outcome::from(taken == 1);
        for ((table, &mask), misp) in tables.iter_mut().zip(&masks).zip(misps.iter_mut()) {
            let h = hist & mask;
            let idx = (pc_bits ^ (h & low_mask) ^ (h >> index_bits)) as usize;
            let prediction = table.predict_and_train(idx, outcome);
            *misp += u64::from(prediction != outcome);
        }
        hist = (hist << 1) | u64::from(taken);
    }
    for (result, misp) in results.iter_mut().zip(misps) {
        result.conditional_branches = trace.conditional_count();
        result.mispredictions = misp;
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate;
    use ev8_predictors::bimodal::Bimodal;
    use ev8_predictors::gshare::Gshare;
    use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
    use ev8_trace::{BranchKind, BranchRecord, Pc, Trace, TraceBuilder};

    fn mixed_trace() -> Trace {
        let mut b = TraceBuilder::new("mixed");
        for i in 0..600u64 {
            b.run(i % 7);
            b.branch(BranchRecord::conditional(
                Pc::new(0x1000 + (i % 13) * 8),
                Pc::new(0x2000),
                (i / 3) % 2 == 0,
            ));
            if i % 5 == 0 {
                b.branch(BranchRecord::always_taken(
                    Pc::new(0x3000),
                    Pc::new(0x4000),
                    BranchKind::Call,
                ));
            }
        }
        b.finish()
    }

    #[test]
    fn batched_matches_serial_exactly() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let mut batch: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(Bimodal::new(10)),
            Box::new(Gshare::new(10, 8)),
            Box::new(TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9))),
        ];
        let batched = simulate_many(&mut batch, &flat);
        let serial = vec![
            simulate(Bimodal::new(10), &t),
            simulate(Gshare::new(10, 8), &t),
            simulate(TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9)), &t),
        ];
        assert_eq!(batched, serial);
    }

    #[test]
    fn flat_single_config_matches_serial() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        assert_eq!(
            simulate_flat(Gshare::new(12, 10), &flat),
            simulate(Gshare::new(12, 10), &t)
        );
    }

    #[test]
    fn batched_leaves_predictor_state_identical_to_serial() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let mut batched = [TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9))];
        simulate_many(&mut batched, &flat);
        let mut serial = TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9));
        simulate(&mut serial, &t);
        assert_eq!(batched[0].write_traffic(), serial.write_traffic());
    }

    /// The specialized gshare sweep path must agree with serial gshare
    /// runs exactly — results, names, and instruction counts — across
    /// the full history-length range it claims, including h = 0
    /// (bimodal-like), h = index_bits, and h up to 2 * index_bits
    /// (two-chunk fold active).
    #[test]
    fn gshare_sweep_matches_serial_exactly() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let histories = [0, 1, 5, 10, 14, 20];
        let batched = simulate_gshare_sweep(10, &histories, &flat);
        let serial: Vec<_> = histories
            .iter()
            .map(|&h| simulate(Gshare::new(10, h), &t))
            .collect();
        assert_eq!(batched, serial);
    }

    /// Histories beyond 2 * index_bits route through the generic engine
    /// and must still match serial runs (the fold is no longer two
    /// chunks there).
    #[test]
    fn gshare_sweep_long_history_fallback_matches_serial() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let histories = [4, 17, 40, 64];
        let batched = simulate_gshare_sweep(8, &histories, &flat);
        let serial: Vec<_> = histories
            .iter()
            .map(|&h| simulate(Gshare::new(8, h), &t))
            .collect();
        assert_eq!(batched, serial);
    }

    #[test]
    fn gshare_sweep_empty_inputs() {
        let flat = FlatTrace::from_trace(&mixed_trace());
        assert!(simulate_gshare_sweep(12, &[], &flat).is_empty());
        let empty = FlatTrace::from_trace(&Trace::default());
        let results = simulate_gshare_sweep(12, &[0, 8], &empty);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].conditional_branches, 0);
        assert_eq!(results[1].mispredictions, 0);
    }

    #[test]
    fn empty_config_set_returns_no_results() {
        let flat = FlatTrace::from_trace(&mixed_trace());
        let mut none: Vec<Box<dyn BranchPredictor>> = Vec::new();
        assert!(simulate_many(&mut none, &flat).is_empty());
    }

    #[test]
    fn empty_trace_yields_empty_results_per_config() {
        let flat = FlatTrace::from_trace(&Trace::default());
        let mut batch = [Bimodal::new(8), Bimodal::new(10)];
        let results = simulate_many(&mut batch, &flat);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.conditional_branches, 0);
            assert_eq!(r.mispredictions, 0);
            assert_eq!(r.checked_misp_per_ki(), None);
        }
    }
}
