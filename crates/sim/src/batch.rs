//! Batched multi-configuration simulation over a [`FlatTrace`].
//!
//! The paper's evaluation is a grid: every figure runs many predictor
//! configurations over the same traces. Serial sweeps pay the trace's
//! memory traffic once *per configuration*; [`simulate_many`] decodes
//! each record once and steps all K configurations on it before moving
//! to the next, so the trace streams through the cache a single time
//! regardless of K. Combined with the packed [`FlatTrace`] layout
//! (~10 bytes/record instead of 24) this is the workspace's sweep
//! engine: parallelism covers benchmarks (`sweep::run_parallel`),
//! batching covers configurations.
//!
//! # Why results are bit-identical to serial runs
//!
//! Each configuration owns its own predictor state; the only shared
//! input is the trace, which is read-only. Interleaving the K state
//! machines over one record stream therefore performs exactly the same
//! sequence of (record, state) transitions each machine would see alone,
//! and [`FlatTrace`] iteration reconstructs records bit-identically to
//! the source [`Trace`](ev8_trace::Trace) (pinned by its unit tests). So
//! `simulate_many(&mut [p1, .., pK], &flat)` returns exactly what K
//! serial [`simulate`](crate::simulate) calls would — the workspace
//! equivalence suite (`tests/batched_equivalence.rs`) asserts this over
//! arbitrary generated traces, including the predictors'
//! write-accounting counters, and `tests/golden_misp.rs` pins the
//! batched path against the golden fixture.
//!
//! # Example
//!
//! ```
//! use ev8_predictors::bimodal::Bimodal;
//! use ev8_predictors::gshare::Gshare;
//! use ev8_predictors::BranchPredictor;
//! use ev8_sim::batch::simulate_many;
//! use ev8_trace::{BranchRecord, FlatTrace, Pc, TraceBuilder};
//!
//! let mut b = TraceBuilder::new("demo");
//! for i in 0..100u64 {
//!     b.branch(BranchRecord::conditional(Pc::new(0x40), Pc::new(0x80), i % 3 != 0));
//! }
//! let flat = FlatTrace::from_trace(&b.finish());
//! let mut configs: Vec<Box<dyn BranchPredictor>> =
//!     vec![Box::new(Bimodal::new(10)), Box::new(Gshare::new(10, 8))];
//! let results = simulate_many(&mut configs, &flat);
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].conditional_branches, 100);
//! ```

use ev8_predictors::bitvec::{Counter2Table, WEAKLY_NOT_TAKEN_FILL};
use ev8_predictors::gshare::Gshare;
use ev8_predictors::BranchPredictor;
use ev8_trace::FlatTrace;

use crate::metrics::SimResult;

/// Runs one predictor over a [`FlatTrace`] with immediate update —
/// exactly [`simulate`](crate::simulate) but streaming the packed
/// columns instead of the AoS record array.
///
/// The `sim_hot_loop` bench records the flat-vs-AoS single-config
/// speedup under the `sweep_batched` group.
pub fn simulate_flat<P: BranchPredictor>(mut predictor: P, trace: &FlatTrace) -> SimResult {
    let mut result = SimResult {
        trace: trace.name().to_owned(),
        predictor: predictor.name(),
        instructions: trace.instruction_count(),
        ..SimResult::default()
    };
    trace.for_each(|record| {
        if let Some(prediction) = predictor.predict_and_update(record) {
            result.conditional_branches += 1;
            result.mispredictions += u64::from(prediction != record.outcome);
        }
    });
    result
}

/// Steps K predictor configurations over a [`FlatTrace`] in one pass,
/// returning one [`SimResult`] per configuration, in input order,
/// bit-identical to K serial [`simulate`](crate::simulate) calls (see
/// the module docs for why).
///
/// `predictors` is borrowed mutably rather than consumed so callers can
/// inspect post-run state (e.g. write-accounting counters) — pass
/// `&mut [Box<dyn BranchPredictor>]` for heterogeneous sweeps or
/// `&mut [concrete]` for homogeneous ones.
///
/// All per-result allocations (trace name, predictor names) happen
/// before the hot loop; the loop itself touches only the packed trace
/// columns, the predictor state, and two flat counter arrays.
pub fn simulate_many<P: BranchPredictor>(
    predictors: &mut [P],
    trace: &FlatTrace,
) -> Vec<SimResult> {
    let k = predictors.len();
    let mut results: Vec<SimResult> = predictors
        .iter()
        .map(|p| SimResult {
            trace: trace.name().to_owned(),
            predictor: p.name(),
            instructions: trace.instruction_count(),
            ..SimResult::default()
        })
        .collect();
    // Hot counters live apart from the string-bearing results so the
    // loop never touches the heap-allocated name fields. The config
    // loop zips predictors with their counters (no index arithmetic, no
    // bounds checks), the K predictor bodies carry no data dependencies
    // between each other, and the misprediction tally is branchless.
    let mut counts = vec![(0u64, 0u64); k];
    trace.for_each(|record| {
        for (predictor, (conditional, mispredicted)) in predictors.iter_mut().zip(counts.iter_mut())
        {
            if let Some(prediction) = predictor.predict_and_update(record) {
                *conditional += 1;
                *mispredicted += u64::from(prediction != record.outcome);
            }
        }
    });
    for (result, (conditional, mispredicted)) in results.iter_mut().zip(counts) {
        result.conditional_branches = conditional;
        result.mispredictions = mispredicted;
    }
    results
}

/// Runs a gshare history-length sweep — the Fig 6/7 sweep axis: one
/// table geometry, many history lengths — over a [`FlatTrace`] in one
/// pass, bit-identical to `histories.len()` serial
/// [`simulate`](crate::simulate)`(Gshare::new(index_bits, h), ..)` calls.
///
/// This is the sweep engine's specialized path, and it is where batching
/// buys more than amortized trace decode: the global history register is
/// derived from trace outcomes alone, never from predictor state, so
/// every configuration in a history-length sweep observes the *same*
/// register and differs only in how many low bits it reads. A serial
/// sweep must re-maintain that register once per configuration, and
/// must re-decode every record (kind dispatch, gap/PC unpacking) once
/// per configuration; this path pays for decode exactly once, up front,
/// by projecting the conditional records into a dense one-u32-per-branch
/// stream, then keeps one shared register plus one shared PC index
/// field per branch and leaves only three operations per
/// configuration per branch — mask, fold-XOR into the index, and the
/// counter read-modify-write (with a branchless misprediction
/// increment; the conditional-branch count is config-invariant and
/// comes from the trace itself). For history lengths at most
/// `2 * index_bits` (every sweep in the paper's figures) the XOR fold
/// reduces to the branchless two-chunk form `(h & m) ^ (h >> index_bits)`;
/// longer histories fall back to the general engine
/// ([`simulate_many`]), which handles any configuration mix.
///
/// Two data-parallel engines sit behind this front door, picked by the
/// history range:
///
/// * histories all ≤ 32 bits (every paper sweep): the **transposed
///   blocked engine** — the branch stream carries its own rolling
///   history snapshot, so configurations decouple completely and each
///   one runs as its *own* tight pass over a block of branches while the
///   block is cache-hot. One configuration's pass touches exactly one
///   `2^index_bits`-counter table (L1-resident) plus a sequential
///   stream read; there is no per-branch configuration dispatch at all.
/// * some history in `(32, 2 * index_bits]`: the bitsliced lane engine
///   ([`simulate_gshare_sweep_bitsliced`]), which keeps a shared `u64`
///   rolling register and steps every configuration's counter as a
///   2-bit lane of one SWAR word per branch.
///
/// # Why this is bit-identical to serial
///
/// * Masking the rolling register at use (`hist & mask_h`) equals
///   masking it at every push, because the mask is a contiguous low-bit
///   mask: bits above position `h` can never flow back down.
/// * The two-chunk fold equals [`xor_fold64`](ev8_predictors::skew::xor_fold64)
///   whenever the value fits in `2 * index_bits` bits, which the
///   fallback guard guarantees.
/// * [`Gshare::predict_and_update`] computes its index before pushing
///   history and only touches history on conditional records — mirrored
///   exactly here, and pinned by the unit tests below plus the
///   workspace equivalence suite.
/// * Configurations never exchange state, so reordering the (branch,
///   config) iteration grid — per-config passes in the transposed
///   engine, per-branch lane steps in the bitsliced one — performs the
///   identical transition sequence per configuration.
///
/// # Panics
///
/// Panics if `index_bits` is outside `1..=30` or any history length
/// exceeds 64 (the same bounds [`Gshare::new`] enforces).
pub fn simulate_gshare_sweep(
    index_bits: u32,
    histories: &[u32],
    trace: &FlatTrace,
) -> Vec<SimResult> {
    if histories.iter().any(|&h| h > 2 * index_bits) {
        let mut configs: Vec<Gshare> = histories
            .iter()
            .map(|&h| Gshare::new(index_bits, h))
            .collect();
        return simulate_many(&mut configs, trace);
    }
    let misps = if histories.iter().all(|&h| h <= 32) {
        transposed_sweep_misps(index_bits, histories, trace)
    } else {
        bitsliced_sweep_misps(index_bits, histories, trace)
    };
    collect_sweep_results(index_bits, histories, trace, misps)
}

/// Runs a gshare history-length sweep through the **bitsliced lane
/// engine**: per branch, every configuration's 2-bit counter is
/// gathered into one `u64` lane word, all lanes advance in a single
/// branch-free [`Counter2Table::step_lanes`] SWAR step sharing the
/// branch outcome, and the updated lanes scatter back — no per-config
/// saturate/compare arithmetic at all, `histories.len()` is bounded
/// only by lane-group chunking (32 configurations per word).
///
/// Results are bit-identical to `histories.len()` serial
/// [`simulate`](crate::simulate) calls, exactly like
/// [`simulate_gshare_sweep`] (which routes to this engine for history
/// lengths above 32 bits and to the transposed blocked engine
/// otherwise — the two are benched head-to-head in the
/// `sweep_bitsliced` group of `BENCH_sim.json`). Histories beyond
/// `2 * index_bits` fall back to [`simulate_many`].
///
/// # Panics
///
/// Panics if `index_bits` is outside `1..=30` or any history length
/// exceeds 64 (the same bounds [`Gshare::new`] enforces).
pub fn simulate_gshare_sweep_bitsliced(
    index_bits: u32,
    histories: &[u32],
    trace: &FlatTrace,
) -> Vec<SimResult> {
    if histories.iter().any(|&h| h > 2 * index_bits) {
        let mut configs: Vec<Gshare> = histories
            .iter()
            .map(|&h| Gshare::new(index_bits, h))
            .collect();
        return simulate_many(&mut configs, trace);
    }
    let misps = bitsliced_sweep_misps(index_bits, histories, trace);
    collect_sweep_results(index_bits, histories, trace, misps)
}

/// Shared result assembly for the sweep engines: per-config skeletons
/// (named to match [`Gshare::name`] without building a table per config
/// just to ask; pinned by the equivalence tests) filled with the
/// config-invariant conditional count and the per-config misprediction
/// tallies.
fn collect_sweep_results(
    index_bits: u32,
    histories: &[u32],
    trace: &FlatTrace,
    misps: Vec<u64>,
) -> Vec<SimResult> {
    histories
        .iter()
        .zip(misps)
        .map(|(&h, misp)| SimResult {
            trace: trace.name().to_owned(),
            predictor: format!("gshare {}K entries, h={h}", (1u64 << index_bits) / 1024),
            instructions: trace.instruction_count(),
            conditional_branches: trace.conditional_count(),
            mispredictions: misp,
        })
        .collect()
}

/// Branches per transposed block: 2^15 stream entries (256 KB) stay
/// resident in L2 while every configuration's pass re-reads them, and
/// one configuration's table (≤ 2^30 counters in principle, 16 KB for
/// the paper's 64K-entry sweeps) stays L1-resident within a pass.
const TRANSPOSED_BLOCK: usize = 1 << 15;

/// The transposed blocked sweep engine (histories ≤ 32 bits).
///
/// One shared decode pass projects the conditional records into a dense
/// one-`u64`-per-branch stream: rolling 32-bit history snapshot in the
/// high word, outcome in bit 31, masked PC index field in the low bits
/// (`index_bits` caps at 30, so the fields never collide). Baking the
/// history into the stream is what makes transposition legal — after
/// it, a configuration's whole simulation is a pure function of the
/// stream, so the (branch, config) grid can run config-major: for each
/// block of branches, each configuration sweeps the block in a tight
/// scalar loop with *zero* per-branch dispatch, a bounds-check-free
/// masked table access, an XOR-merge counter store and a branchless
/// misprediction tally. Per (branch, config) that is ~a dozen ALU ops
/// against one L1 load/store — the data-parallel inner loop the
/// one-u32-per-branch engine from PR 5 still interleaved away.
fn transposed_sweep_misps(index_bits: u32, histories: &[u32], trace: &FlatTrace) -> Vec<u64> {
    assert!((1..=30).contains(&index_bits), "index_bits must be 1..=30");
    debug_assert!(histories.iter().all(|&h| h <= 32 && h <= 2 * index_bits));
    let low_mask = (1u64 << index_bits) - 1;
    let mut stream: Vec<u64> = Vec::with_capacity(trace.conditional_count() as usize);
    let mut hist: u64 = 0;
    trace.for_each_conditional(|pc_shifted, outcome| {
        let taken = u64::from(outcome.is_taken());
        stream.push((hist << 32) | (taken << 31) | (pc_shifted & low_mask));
        hist = ((hist << 1) | taken) & u32::MAX as u64;
    });
    if index_bits <= BYTE_TABLE_MAX_BITS {
        transposed_pass_bytes(index_bits, &stream, histories)
    } else {
        transposed_pass_packed(index_bits, &stream, histories)
    }
}

/// Geometry ceiling for the byte-per-counter engine tables: past
/// `2^22` entries (4 MB per configuration) the 4× storage inflation
/// over packed words stops being a cache win, so larger sweeps take the
/// packed-word pass instead. Every sweep in the paper's figures is far
/// below this.
const BYTE_TABLE_MAX_BITS: u32 = 22;

/// Fused counter-step table: entry `(cur << 1) | taken` holds the next
/// counter value (`cur + 2 * taken - 1` clamped to `0..=3`) in bits
/// 0..2 and the misprediction flag (`(cur >> 1) != taken`) in bit 2.
/// One 8-byte L1 load replaces the saturate arithmetic (whose `min`
/// compiles to a data-dependent branch that mispredicts on every
/// saturation) *and* the predict-vs-outcome compare.
const COUNTER_STEP_LUT: [u8; 8] = [0, 5, 0, 6, 5, 3, 6, 3];

/// The byte-table inner passes of the transposed engine.
///
/// Engine tables here are one *byte* per 2-bit counter — 4× the state
/// of the packed [`Counter2Table`] layout, but the per-branch
/// read-modify-write loses every variable-count shift (2–3 µops each on
/// Intel, and the packed form needs several): extract is a plain byte
/// load, the step is one [`COUNTER_STEP_LUT`] lookup, write-back is a
/// byte store. A configuration's table (64 KB for the paper's
/// 64K-entry geometry) stays L1/L2-resident within its pass. Sweeps
/// whose history fits inside the index (`mask <= low_mask`, true for
/// every paper figure) skip the fold's shift-XOR entirely.
///
/// Configurations run through each block in *pairs*: on traces whose
/// dynamic branches concentrate on a few static sites (compress: ~45
/// statics, one dominant loop branch) consecutive steps of one
/// configuration read-modify-write the *same* counter, so a lone
/// config's loop serializes on the store-to-load-forward → LUT-load
/// chain (~15 cycles/branch measured, vs ~6-7 when indices spread).
/// Two configurations' chains are independent, so interleaving them in
/// one loop lets out-of-order execution overlap the stalls; each
/// configuration still steps the block strictly in trace order, so the
/// pairing is bit-exact by construction.
fn transposed_pass_bytes(index_bits: u32, stream: &[u64], histories: &[u32]) -> Vec<u64> {
    let low_mask = (1u64 << index_bits) - 1;
    let entries = 1usize << index_bits;
    let masks: Vec<u64> = histories.iter().map(|&h| mask_for(h)).collect();
    let mut tables: Vec<Vec<u8>> = vec![vec![0b01; entries]; histories.len()];
    let mut misps: Vec<u64> = vec![0; histories.len()];
    for block in stream.chunks(TRANSPOSED_BLOCK) {
        for ((pair, mask2), misp2) in tables
            .chunks_mut(2)
            .zip(masks.chunks(2))
            .zip(misps.chunks_mut(2))
        {
            if pair.len() == 2 {
                let (mask_a, mask_b) = (mask2[0], mask2[1]);
                let (pa, pb) = pair.split_at_mut(1);
                let ta = pa[0].as_mut_slice();
                let tb = pb[0].as_mut_slice();
                // Derived from *these* slices' (power-of-two) lengths so
                // the compiler can prove the masked accesses in bounds
                // and emit no checks in the inner loops.
                let tmask_a = ta.len() - 1;
                let tmask_b = tb.len() - 1;
                let (mut tally_a, mut tally_b) = (0u64, 0u64);
                if mask_a <= low_mask && mask_b <= low_mask {
                    for &e in block {
                        // History fits inside the index field: the
                        // fold's high chunk is zero, bit 31 (the
                        // outcome) dies under low_mask.
                        let idx_a = ((e ^ ((e >> 32) & mask_a)) & low_mask) as usize;
                        let idx_b = ((e ^ ((e >> 32) & mask_b)) & low_mask) as usize;
                        let t = (e >> 31) & 1;
                        let slot_a = &mut ta[idx_a & tmask_a];
                        let key_a = ((u64::from(*slot_a) << 1) | t) as usize;
                        let va = COUNTER_STEP_LUT[key_a & 7];
                        *slot_a = va & 0b11;
                        tally_a += u64::from(va >> 2);
                        let slot_b = &mut tb[idx_b & tmask_b];
                        let key_b = ((u64::from(*slot_b) << 1) | t) as usize;
                        let vb = COUNTER_STEP_LUT[key_b & 7];
                        *slot_b = vb & 0b11;
                        tally_b += u64::from(vb >> 2);
                    }
                } else {
                    for &e in block {
                        // Two-chunk fold: exactly xor_fold64 for values
                        // below 2^(2 * index_bits).
                        let hm_a = (e >> 32) & mask_a;
                        let hm_b = (e >> 32) & mask_b;
                        let idx_a = (((e ^ hm_a) & low_mask) ^ (hm_a >> index_bits)) as usize;
                        let idx_b = (((e ^ hm_b) & low_mask) ^ (hm_b >> index_bits)) as usize;
                        let t = (e >> 31) & 1;
                        let slot_a = &mut ta[idx_a & tmask_a];
                        let key_a = ((u64::from(*slot_a) << 1) | t) as usize;
                        let va = COUNTER_STEP_LUT[key_a & 7];
                        *slot_a = va & 0b11;
                        tally_a += u64::from(va >> 2);
                        let slot_b = &mut tb[idx_b & tmask_b];
                        let key_b = ((u64::from(*slot_b) << 1) | t) as usize;
                        let vb = COUNTER_STEP_LUT[key_b & 7];
                        *slot_b = vb & 0b11;
                        tally_b += u64::from(vb >> 2);
                    }
                }
                misp2[0] += tally_a;
                misp2[1] += tally_b;
                continue;
            }
            // Odd trailing configuration: the single-table loop.
            let table = pair[0].as_mut_slice();
            let mask = mask2[0];
            let tmask = table.len() - 1;
            let mut tally = 0u64;
            if mask <= low_mask {
                for &e in block {
                    let hm = (e >> 32) & mask;
                    let idx = ((e ^ hm) & low_mask) as usize;
                    let slot = &mut table[idx & tmask];
                    let t = (e >> 31) & 1;
                    let key = ((u64::from(*slot) << 1) | t) as usize;
                    let v = COUNTER_STEP_LUT[key & 7];
                    *slot = v & 0b11;
                    tally += u64::from(v >> 2);
                }
            } else {
                for &e in block {
                    let hm = (e >> 32) & mask;
                    let idx = (((e ^ hm) & low_mask) ^ (hm >> index_bits)) as usize;
                    let slot = &mut table[idx & tmask];
                    let t = (e >> 31) & 1;
                    let key = ((u64::from(*slot) << 1) | t) as usize;
                    let v = COUNTER_STEP_LUT[key & 7];
                    *slot = v & 0b11;
                    tally += u64::from(v >> 2);
                }
            }
            misp2[0] += tally;
        }
    }
    misps
}

/// The packed-word inner pass of the transposed engine, for geometries
/// past [`BYTE_TABLE_MAX_BITS`]: same iteration order, counters stored
/// 32 per `u64` word exactly like [`Counter2Table`].
fn transposed_pass_packed(index_bits: u32, stream: &[u64], histories: &[u32]) -> Vec<u64> {
    let low_mask = (1u64 << index_bits) - 1;
    let word_count = (1usize << index_bits).div_ceil(32);
    let masks: Vec<u64> = histories.iter().map(|&h| mask_for(h)).collect();
    let mut tables: Vec<Vec<u64>> = vec![vec![WEAKLY_NOT_TAKEN_FILL; word_count]; histories.len()];
    let mut misps: Vec<u64> = vec![0; histories.len()];
    for block in stream.chunks(TRANSPOSED_BLOCK) {
        for ((words, &mask), misp) in tables.iter_mut().zip(&masks).zip(misps.iter_mut()) {
            let words = words.as_mut_slice();
            let wmask = words.len() - 1;
            let mut tally = 0u64;
            for &e in block {
                let hm = (e >> 32) & mask;
                let idx = (((e ^ hm) & low_mask) ^ (hm >> index_bits)) as usize;
                let shift = ((idx & 31) << 1) as u32;
                let word = &mut words[(idx >> 5) & wmask];
                let cur = (*word >> shift) & 0b11;
                let t = (e >> 31) & 1;
                let key = (((cur << 1) | t) & 7) as usize;
                let v = u64::from(COUNTER_STEP_LUT[key]);
                *word ^= (cur ^ (v & 0b11)) << shift;
                tally += v >> 2;
            }
            *misp += tally;
        }
    }
    misps
}

/// The bitsliced lane sweep engine (histories ≤ `2 * index_bits`, any
/// length up to [`Gshare`]'s 64-bit register).
///
/// Shares the one-`u32`-per-branch stream (outcome in bit 31, masked PC
/// index field below) and a single `u64` rolling register across all
/// configurations; per branch, each configuration contributes its
/// counter as one 2-bit lane of a SWAR word, and a single
/// [`Counter2Table::step_lanes`] call predicts and saturates every
/// lane at once against the shared outcome. Configurations beyond 32
/// run as additional lane groups over the same stream.
fn bitsliced_sweep_misps(index_bits: u32, histories: &[u32], trace: &FlatTrace) -> Vec<u64> {
    assert!((1..=30).contains(&index_bits), "index_bits must be 1..=30");
    debug_assert!(histories.iter().all(|&h| h <= 2 * index_bits && h <= 64));
    let low_mask = (1u64 << index_bits) - 1;
    let mut stream: Vec<u32> = Vec::with_capacity(trace.conditional_count() as usize);
    trace.for_each_conditional(|pc_shifted, outcome| {
        let pcb = (pc_shifted & low_mask) as u32;
        stream.push(pcb | (u32::from(outcome.is_taken()) << 31));
    });

    let word_count = (1usize << index_bits).div_ceil(32);
    let mut misps: Vec<u64> = Vec::with_capacity(histories.len());
    for group in histories.chunks(32) {
        let masks: Vec<u64> = group.iter().map(|&h| mask_for(h)).collect();
        let mut tables: Vec<Vec<u64>> = vec![vec![WEAKLY_NOT_TAKEN_FILL; word_count]; group.len()];
        let mut indices: Vec<usize> = vec![0; group.len()];
        let mut group_misps: Vec<u64> = vec![0; group.len()];
        let mut hist: u64 = 0;
        for &enc in &stream {
            let taken = u64::from(enc >> 31);
            let pc_bits = u64::from(enc & 0x7FFF_FFFF);
            // Gather: lane k <- config k's counter at its own index (the
            // word mask comes from each slice's own power-of-two length
            // so the accesses compile without bounds checks).
            let mut lanes = 0u64;
            for (k, (words, &mask)) in tables.iter().zip(&masks).enumerate() {
                let h = hist & mask;
                let idx = (pc_bits ^ (h & low_mask) ^ (h >> index_bits)) as usize;
                indices[k] = idx;
                let word = words[(idx >> 5) & (words.len() - 1)];
                lanes |= ((word >> ((idx & 31) << 1)) & 0b11) << (k * 2);
            }
            // One SWAR step advances every configuration's counter.
            let (predictions, next) = Counter2Table::step_lanes(lanes, taken == 1);
            // Scatter the updated lanes and tally mispredictions.
            for (k, (words, misp)) in tables.iter_mut().zip(group_misps.iter_mut()).enumerate() {
                let idx = indices[k];
                let shift = ((idx & 31) << 1) as u32;
                let wmask = words.len() - 1;
                let word = &mut words[(idx >> 5) & wmask];
                *word = (*word & !(0b11u64 << shift)) | (((next >> (k * 2)) & 0b11) << shift);
                *misp += ((predictions >> (k * 2)) & 1) ^ taken;
            }
            hist = (hist << 1) | taken;
        }
        misps.extend(group_misps);
    }
    misps
}

/// `(1 << h) - 1` without the `h = 64` overflow.
#[inline]
fn mask_for(h: u32) -> u64 {
    if h >= 64 {
        u64::MAX
    } else {
        (1u64 << h) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate;
    use ev8_predictors::bimodal::Bimodal;
    use ev8_predictors::gshare::Gshare;
    use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
    use ev8_trace::{BranchKind, BranchRecord, Pc, Trace, TraceBuilder};

    fn mixed_trace() -> Trace {
        let mut b = TraceBuilder::new("mixed");
        for i in 0..600u64 {
            b.run(i % 7);
            b.branch(BranchRecord::conditional(
                Pc::new(0x1000 + (i % 13) * 8),
                Pc::new(0x2000),
                (i / 3) % 2 == 0,
            ));
            if i % 5 == 0 {
                b.branch(BranchRecord::always_taken(
                    Pc::new(0x3000),
                    Pc::new(0x4000),
                    BranchKind::Call,
                ));
            }
        }
        b.finish()
    }

    #[test]
    fn batched_matches_serial_exactly() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let mut batch: Vec<Box<dyn BranchPredictor>> = vec![
            Box::new(Bimodal::new(10)),
            Box::new(Gshare::new(10, 8)),
            Box::new(TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9))),
        ];
        let batched = simulate_many(&mut batch, &flat);
        let serial = vec![
            simulate(Bimodal::new(10), &t),
            simulate(Gshare::new(10, 8), &t),
            simulate(TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9)), &t),
        ];
        assert_eq!(batched, serial);
    }

    #[test]
    fn flat_single_config_matches_serial() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        assert_eq!(
            simulate_flat(Gshare::new(12, 10), &flat),
            simulate(Gshare::new(12, 10), &t)
        );
    }

    #[test]
    fn batched_leaves_predictor_state_identical_to_serial() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let mut batched = [TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9))];
        simulate_many(&mut batched, &flat);
        let mut serial = TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9));
        simulate(&mut serial, &t);
        assert_eq!(batched[0].write_traffic(), serial.write_traffic());
    }

    /// The specialized gshare sweep path must agree with serial gshare
    /// runs exactly — results, names, and instruction counts — across
    /// the full history-length range it claims, including h = 0
    /// (bimodal-like), h = index_bits, and h up to 2 * index_bits
    /// (two-chunk fold active).
    #[test]
    fn gshare_sweep_matches_serial_exactly() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let histories = [0, 1, 5, 10, 14, 20];
        let batched = simulate_gshare_sweep(10, &histories, &flat);
        let serial: Vec<_> = histories
            .iter()
            .map(|&h| simulate(Gshare::new(10, h), &t))
            .collect();
        assert_eq!(batched, serial);
    }

    /// The bitsliced lane engine must agree with serial gshare runs
    /// exactly over its full claimed range, including the long-history
    /// region (32 < h <= 2 * index_bits) the front door routes to it
    /// and lane positions across the whole SWAR word.
    #[test]
    fn bitsliced_lane_engine_matches_serial_exactly() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let histories = [0, 1, 5, 10, 14, 20, 33, 36];
        let batched = simulate_gshare_sweep_bitsliced(18, &histories, &flat);
        let serial: Vec<_> = histories
            .iter()
            .map(|&h| simulate(Gshare::new(18, h), &t))
            .collect();
        assert_eq!(batched, serial);
        // The front door routes to the lane engine whenever a history
        // exceeds 32 bits — same results through that path.
        assert_eq!(simulate_gshare_sweep(18, &histories, &flat), serial);
    }

    /// More than 32 configurations split into multiple lane groups; the
    /// group boundary must be invisible in the results.
    #[test]
    fn bitsliced_lane_groups_chunk_past_32_configs() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let histories: Vec<u32> = (0..40).map(|i| i % 20).collect();
        let batched = simulate_gshare_sweep_bitsliced(10, &histories, &flat);
        let serial: Vec<_> = histories
            .iter()
            .map(|&h| simulate(Gshare::new(10, h), &t))
            .collect();
        assert_eq!(batched, serial);
    }

    /// The bitsliced front door falls back to the generic engine beyond
    /// 2 * index_bits, like `simulate_gshare_sweep`.
    #[test]
    fn bitsliced_long_history_fallback_matches_serial() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let histories = [4, 17, 40, 64];
        let batched = simulate_gshare_sweep_bitsliced(8, &histories, &flat);
        let serial: Vec<_> = histories
            .iter()
            .map(|&h| simulate(Gshare::new(8, h), &t))
            .collect();
        assert_eq!(batched, serial);
    }

    /// The transposed engine must stay exact across multiple blocks
    /// (table state carries over block boundaries) and at h = 32, the
    /// top of its claimed range.
    #[test]
    fn transposed_engine_spans_blocks_exactly() {
        let mut b = TraceBuilder::new("blocks");
        // > 2 * TRANSPOSED_BLOCK conditionals with enough PC spread and
        // outcome structure that block-boundary bugs would show.
        for i in 0..(2 * TRANSPOSED_BLOCK as u64 + 1234) {
            b.branch(BranchRecord::conditional(
                Pc::new(0x1000 + (i % 4093) * 4),
                Pc::new(0x2000),
                (i * i / 7) % 3 != 0,
            ));
        }
        let t = b.finish();
        let flat = FlatTrace::from_trace(&t);
        let histories = [0, 7, 16, 32];
        let batched = simulate_gshare_sweep(16, &histories, &flat);
        let serial: Vec<_> = histories
            .iter()
            .map(|&h| simulate(Gshare::new(16, h), &t))
            .collect();
        assert_eq!(batched, serial);
    }

    /// Geometries past BYTE_TABLE_MAX_BITS take the packed-word pass;
    /// it must be just as exact (and histories past index_bits exercise
    /// its fold).
    #[test]
    fn transposed_packed_fallback_matches_serial_exactly() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let histories = [0, 9, 23, 30];
        let batched = simulate_gshare_sweep(BYTE_TABLE_MAX_BITS + 1, &histories, &flat);
        let serial: Vec<_> = histories
            .iter()
            .map(|&h| simulate(Gshare::new(BYTE_TABLE_MAX_BITS + 1, h), &t))
            .collect();
        assert_eq!(batched, serial);
    }

    #[test]
    fn bitsliced_sweep_empty_inputs() {
        let flat = FlatTrace::from_trace(&mixed_trace());
        assert!(simulate_gshare_sweep_bitsliced(12, &[], &flat).is_empty());
        let empty = FlatTrace::from_trace(&Trace::default());
        let results = simulate_gshare_sweep_bitsliced(12, &[0, 8], &empty);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].conditional_branches, 0);
        assert_eq!(results[1].mispredictions, 0);
    }

    /// Histories beyond 2 * index_bits route through the generic engine
    /// and must still match serial runs (the fold is no longer two
    /// chunks there).
    #[test]
    fn gshare_sweep_long_history_fallback_matches_serial() {
        let t = mixed_trace();
        let flat = FlatTrace::from_trace(&t);
        let histories = [4, 17, 40, 64];
        let batched = simulate_gshare_sweep(8, &histories, &flat);
        let serial: Vec<_> = histories
            .iter()
            .map(|&h| simulate(Gshare::new(8, h), &t))
            .collect();
        assert_eq!(batched, serial);
    }

    #[test]
    fn gshare_sweep_empty_inputs() {
        let flat = FlatTrace::from_trace(&mixed_trace());
        assert!(simulate_gshare_sweep(12, &[], &flat).is_empty());
        let empty = FlatTrace::from_trace(&Trace::default());
        let results = simulate_gshare_sweep(12, &[0, 8], &empty);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].conditional_branches, 0);
        assert_eq!(results[1].mispredictions, 0);
    }

    #[test]
    fn empty_config_set_returns_no_results() {
        let flat = FlatTrace::from_trace(&mixed_trace());
        let mut none: Vec<Box<dyn BranchPredictor>> = Vec::new();
        assert!(simulate_many(&mut none, &flat).is_empty());
    }

    #[test]
    fn empty_trace_yields_empty_results_per_config() {
        let flat = FlatTrace::from_trace(&Trace::default());
        let mut batch = [Bimodal::new(8), Bimodal::new(10)];
        let results = simulate_many(&mut batch, &flat);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.conditional_branches, 0);
            assert_eq!(r.mispredictions, 0);
            assert_eq!(r.checked_misp_per_ki(), None);
        }
    }
}
