//! Simulation result metrics.

use std::fmt;

use ev8_util::json::{JsonObject, ToJson};

/// The outcome of one predictor-over-trace simulation run.
///
/// The paper's headline metric is [`SimResult::misp_per_ki`]:
/// mispredictions per 1000 instructions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Trace (benchmark) name.
    pub trace: String,
    /// Predictor name (including configuration).
    pub predictor: String,
    /// Total dynamic instructions in the run.
    pub instructions: u64,
    /// Dynamic conditional branches predicted.
    pub conditional_branches: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
}

impl SimResult {
    /// Mispredictions per 1000 instructions — the paper's metric.
    pub fn misp_per_ki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of conditional branches predicted correctly.
    pub fn accuracy(&self) -> f64 {
        if self.conditional_branches == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.conditional_branches as f64
        }
    }

    /// Misprediction rate over conditional branches.
    pub fn misprediction_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }
}

impl ToJson for SimResult {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::new();
        o.field("trace", &self.trace)
            .field("predictor", &self.predictor)
            .field("instructions", &self.instructions)
            .field("conditional_branches", &self.conditional_branches)
            .field("mispredictions", &self.mispredictions)
            .field("misp_per_ki", &self.misp_per_ki());
        o.finish_into(out);
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {}: {:.3} misp/KI ({:.2}% accuracy, {} mispredictions / {} branches)",
            self.trace,
            self.predictor,
            self.misp_per_ki(),
            self.accuracy() * 100.0,
            self.mispredictions,
            self.conditional_branches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_arithmetic() {
        let r = SimResult {
            trace: "t".into(),
            predictor: "p".into(),
            instructions: 100_000,
            conditional_branches: 12_000,
            mispredictions: 600,
        };
        assert!((r.misp_per_ki() - 6.0).abs() < 1e-12);
        assert!((r.accuracy() - 0.95).abs() < 1e-12);
        assert!((r.misprediction_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn json_includes_derived_metric() {
        let r = SimResult {
            trace: "t".into(),
            predictor: "p".into(),
            instructions: 100_000,
            conditional_branches: 12_000,
            mispredictions: 600,
        };
        assert_eq!(
            r.to_json(),
            r#"{"trace":"t","predictor":"p","instructions":100000,"conditional_branches":12000,"mispredictions":600,"misp_per_ki":6}"#
        );
    }

    #[test]
    fn empty_run_is_well_defined() {
        let r = SimResult::default();
        assert_eq!(r.misp_per_ki(), 0.0);
        assert_eq!(r.accuracy(), 1.0);
        assert!(!r.to_string().is_empty());
    }
}
