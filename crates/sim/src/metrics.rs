//! Simulation result metrics.

use std::fmt;

use ev8_util::json::{JsonObject, ToJson};

/// The outcome of one predictor-over-trace simulation run.
///
/// The paper's headline metric is [`SimResult::misp_per_ki`]:
/// mispredictions per 1000 instructions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Trace (benchmark) name.
    pub trace: String,
    /// Predictor name (including configuration).
    pub predictor: String,
    /// Total dynamic instructions in the run.
    pub instructions: u64,
    /// Dynamic conditional branches predicted.
    pub conditional_branches: u64,
    /// Mispredicted conditional branches.
    pub mispredictions: u64,
}

impl SimResult {
    /// Mispredictions per 1000 instructions — the paper's metric.
    ///
    /// An empty run (zero instructions) has no meaningful rate; asking for
    /// one almost always means a trace failed to generate or a scale
    /// rounded to nothing, so debug builds panic to surface the bug.
    /// Release builds return 0.0 (the historical behavior). Callers that
    /// can legitimately see empty runs should use
    /// [`SimResult::checked_misp_per_ki`].
    pub fn misp_per_ki(&self) -> f64 {
        debug_assert!(
            self.instructions > 0,
            "misp_per_ki on an empty run (no instructions) — \
             was the trace empty or the scale rounded to zero?"
        );
        self.checked_misp_per_ki().unwrap_or(0.0)
    }

    /// Mispredictions per 1000 instructions, or `None` for an empty run
    /// (zero instructions) where the rate is undefined.
    pub fn checked_misp_per_ki(&self) -> Option<f64> {
        if self.instructions == 0 {
            None
        } else {
            Some(self.mispredictions as f64 * 1000.0 / self.instructions as f64)
        }
    }

    /// Fraction of conditional branches predicted correctly.
    pub fn accuracy(&self) -> f64 {
        if self.conditional_branches == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.conditional_branches as f64
        }
    }

    /// Misprediction rate over conditional branches.
    pub fn misprediction_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }
}

impl ToJson for SimResult {
    fn write_json(&self, out: &mut String) {
        let mut o = JsonObject::new();
        o.field("trace", &self.trace)
            .field("predictor", &self.predictor)
            .field("instructions", &self.instructions)
            .field("conditional_branches", &self.conditional_branches)
            .field("mispredictions", &self.mispredictions)
            .field("misp_per_ki", &self.checked_misp_per_ki());
        o.finish_into(out);
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Display must never panic, so it reports an empty run honestly
        // instead of going through the asserting accessor.
        let mispki = match self.checked_misp_per_ki() {
            Some(v) => format!("{v:.3}"),
            None => "n/a (empty run)".to_owned(),
        };
        write!(
            f,
            "{} / {}: {} misp/KI ({:.2}% accuracy, {} mispredictions / {} branches)",
            self.trace,
            self.predictor,
            mispki,
            self.accuracy() * 100.0,
            self.mispredictions,
            self.conditional_branches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_arithmetic() {
        let r = SimResult {
            trace: "t".into(),
            predictor: "p".into(),
            instructions: 100_000,
            conditional_branches: 12_000,
            mispredictions: 600,
        };
        assert!((r.misp_per_ki() - 6.0).abs() < 1e-12);
        assert!((r.accuracy() - 0.95).abs() < 1e-12);
        assert!((r.misprediction_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn json_includes_derived_metric() {
        let r = SimResult {
            trace: "t".into(),
            predictor: "p".into(),
            instructions: 100_000,
            conditional_branches: 12_000,
            mispredictions: 600,
        };
        assert_eq!(
            r.to_json(),
            r#"{"trace":"t","predictor":"p","instructions":100000,"conditional_branches":12000,"mispredictions":600,"misp_per_ki":6}"#
        );
    }

    #[test]
    fn empty_run_is_detectable() {
        let r = SimResult::default();
        assert_eq!(r.checked_misp_per_ki(), None);
        assert_eq!(r.accuracy(), 1.0);
        // Display and JSON stay total: no panic, explicit markers.
        assert!(r.to_string().contains("n/a (empty run)"));
        assert!(r.to_json().contains(r#""misp_per_ki":null"#));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "empty run")]
    fn empty_run_misp_per_ki_panics_in_debug() {
        let _ = SimResult::default().misp_per_ki();
    }
}
