//! Aligned text-table rendering for experiment reports.

use std::fmt;

/// A simple aligned text table: a header row plus data rows.
///
/// # Example
///
/// ```
/// use ev8_sim::report::TextTable;
///
/// let mut t = TextTable::new(vec!["bench".into(), "misp/KI".into()]);
/// t.row(vec!["compress".into(), "4.32".into()]);
/// let s = t.to_string();
/// assert!(s.contains("compress"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The cell at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// The headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Renders the table as RFC-4180-style CSV (fields quoted when they
    /// contain commas, quotes or newlines) for downstream plotting.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        let mut push_row = |cells: &[String]| {
            let row: Vec<String> = cells.iter().map(|c| field(c)).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        };
        push_row(&self.headers);
        for r in &self.rows {
            push_row(r);
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = c
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || matches!(ch, '.' | '-' | '+' | '%' | 'x'));
                if numeric && !c.is_empty() {
                    write!(f, "{c:>width$}", width = widths[i])?;
                } else {
                    write!(f, "{c:<width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// A complete experiment report: a title, the regenerated table, and
/// free-form notes comparing against the paper.
#[derive(Clone, Debug)]
pub struct ExperimentReport {
    /// E.g. `"Figure 5: prediction accuracy of global history schemes"`.
    pub title: String,
    /// The regenerated rows/series.
    pub table: TextTable,
    /// Notes: expected shape from the paper, caveats.
    pub notes: Vec<String>,
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.title)?;
        writeln!(f)?;
        write!(f, "{}", self.table)?;
        if !self.notes.is_empty() {
            writeln!(f)?;
            for n in &self.notes {
                writeln!(f, "note: {n}")?;
            }
        }
        Ok(())
    }
}

impl ExperimentReport {
    /// The report's table as CSV (see [`TextTable::to_csv`]).
    pub fn to_csv(&self) -> String {
        self.table.to_csv()
    }

    /// Writes the CSV next to other experiment artifacts; the file name
    /// is derived from the title (lowercased, non-alphanumerics folded to
    /// `_`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let stem: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_");
        let path = dir.join(format!("{stem}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a misp/KI value for table cells.
pub fn fmt_mispki(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["short".into(), "1.0".into()]);
        t.row(vec!["a-much-longer-name".into(), "123.456".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
                                    // All rows the same width (trailing alignment).
        assert!(lines[2].starts_with("short"));
        assert!(lines[3].starts_with("a-much-longer-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(0, 1), "1.0");
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_rejected() {
        TextTable::new(vec![]);
    }

    #[test]
    fn report_displays_everything() {
        let mut t = TextTable::new(vec!["bench".into(), "misp/KI".into()]);
        t.row(vec!["go".into(), fmt_mispki(12.3456)]);
        let r = ExperimentReport {
            title: "Figure X".into(),
            table: t,
            notes: vec!["shape holds".into()],
        };
        let s = r.to_string();
        assert!(s.contains("=== Figure X ==="));
        assert!(s.contains("12.346"));
        assert!(s.contains("note: shape holds"));
    }

    #[test]
    fn numeric_cells_right_aligned() {
        let mut t = TextTable::new(vec!["col".into()]);
        t.row(vec!["1.5".into()]);
        let s = t.to_string();
        assert!(s.contains("1.5"));
    }

    #[test]
    fn csv_escapes_and_rounds_trip_rows() {
        let mut t = TextTable::new(vec!["name".into(), "value".into()]);
        t.row(vec!["plain".into(), "1.5".into()]);
        t.row(vec!["with,comma".into(), "quote\"inside".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1.5");
        assert_eq!(lines[2], "\"with,comma\",\"quote\"\"inside\"");
    }

    #[test]
    fn report_csv_file_name_from_title() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["1".into()]);
        let r = ExperimentReport {
            title: "Figure 5: misp/KI (best)".into(),
            table: t,
            notes: vec![],
        };
        let dir = std::env::temp_dir();
        let path = r.write_csv(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("figure_5"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a\n"));
        std::fs::remove_file(path).ok();
    }
}
