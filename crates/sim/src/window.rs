//! Windowed single-trace parallelism: split one [`FlatTrace`] into
//! contiguous windows, simulate them on worker threads, splice the
//! per-window scoreboards.
//!
//! Batching ([`crate::batch`]) parallelizes over *configurations*;
//! [`crate::sweep::run_parallel`] parallelizes over *benchmarks*. The
//! remaining serial axis is a single long trace with a single predictor:
//! prediction is a strictly sequential state machine, so exact
//! parallelism within one trace is impossible. Windowing trades a
//! bounded, measurable accuracy error for wall-clock: each worker
//! simulates one window `[s, e)` of the record stream, but first *warms
//! up* by running the preceding `warmup_len` records `[s - W, s)`
//! through a fresh predictor with predictions discarded. Branch
//! predictor state is strongly mixing — a few hundred thousand branches
//! overwrite essentially every live table entry and history bit — so a
//! modest warmup makes the spliced misprediction total converge on the
//! serial one.
//!
//! Two properties make the error auditable rather than hand-waved
//! (pinned by the tests here and in `tests/batched_equivalence.rs`):
//!
//! 1. **Exactness at full warmup.** If `warmup_len` covers the whole
//!    prefix of every window (`warmup_len >= len - window_len`), each
//!    worker replays exactly the serial predictor state and the splice
//!    equals [`simulate_flat`](crate::simulate_flat) *bit for bit*.
//! 2. **Monotone convergence in practice.** Growing the warmup can only
//!    extend the replayed prefix toward the serial one; the property
//!    test checks the misprediction delta against the serial golden
//!    count shrinks to zero as warmup grows.
//!
//! The per-window warmup is redundant work: total cost is
//! `len + windows * warmup_len` record steps, so throughput scales as
//! `workers / (1 + W/window_len)`. The `sweep_bitsliced` bench records
//! the realized branches/sec and the signed misprediction delta next to
//! each other, so the speed/accuracy trade is always visible in
//! `BENCH_sim.json`.

use std::sync::Arc;

use ev8_predictors::BranchPredictor;
use ev8_trace::FlatTrace;

use crate::metrics::SimResult;
use crate::sweep::{run_parallel_with, RunPolicy};

/// Geometry of a windowed run: how the record stream is cut and how much
/// redundant prefix each window replays before measuring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowPlan {
    /// Measured records per window (the last window may be shorter).
    /// Must be non-zero.
    pub window_len: usize,
    /// Records replayed before each window with predictions discarded,
    /// clamped to the available prefix. Window 0 needs no warmup.
    pub warmup_len: usize,
}

impl WindowPlan {
    /// A plan with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    pub fn new(window_len: usize, warmup_len: usize) -> Self {
        assert!(window_len > 0, "window_len must be non-zero");
        WindowPlan {
            window_len,
            warmup_len,
        }
    }

    /// Number of windows a trace of `records` records splits into.
    pub fn windows(&self, records: usize) -> usize {
        records.div_ceil(self.window_len)
    }

    /// True when the warmup covers every window's full prefix, making
    /// the splice bit-identical to a serial run (see module docs).
    pub fn is_exact_for(&self, records: usize) -> bool {
        records <= self.window_len || self.warmup_len >= records - self.window_len
    }
}

/// Per-window scoreboard from a windowed run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowCounts {
    /// Conditional branches measured in the window (warmup excluded).
    pub conditional_branches: u64,
    /// Mispredictions among them.
    pub mispredictions: u64,
}

/// Result of [`simulate_windowed`]: the spliced [`SimResult`] plus the
/// per-window scoreboards for bit-accounting against a serial run.
#[derive(Clone, Debug)]
pub struct WindowedRun {
    /// Spliced totals, shaped exactly like a serial result.
    pub result: SimResult,
    /// The geometry the run used.
    pub plan: WindowPlan,
    /// One scoreboard per window, in trace order; sums match `result`.
    pub per_window: Vec<WindowCounts>,
}

/// Simulates `trace` in parallel windows, splicing the scoreboards.
///
/// `factory` builds one fresh predictor per window (each worker owns its
/// state; nothing is shared but the read-only trace). Jobs run over
/// [`run_parallel_with`] under `policy`; window results are spliced by
/// summation in trace order, so the output is deterministic regardless
/// of worker scheduling.
///
/// # Panics
///
/// Panics if any window job fails under `policy` (a missing window would
/// silently corrupt the splice, so degraded mode is not supported here),
/// or if `workers == 0`.
pub fn simulate_windowed<P, F>(
    factory: F,
    trace: &Arc<FlatTrace>,
    plan: WindowPlan,
    workers: usize,
    policy: &RunPolicy,
) -> WindowedRun
where
    P: BranchPredictor,
    F: Fn() -> P + Send + Sync + 'static,
{
    let len = trace.len();
    let mut result = SimResult {
        trace: trace.name().to_owned(),
        predictor: factory().name(),
        instructions: trace.instruction_count(),
        ..SimResult::default()
    };
    let factory = Arc::new(factory);
    let jobs: Vec<Box<dyn Fn() -> WindowCounts + Send + 'static>> = (0..plan.windows(len))
        .map(|w| {
            let trace = Arc::clone(trace);
            let factory = Arc::clone(&factory);
            let start = w * plan.window_len;
            let end = (start + plan.window_len).min(len);
            let warm_start = start - plan.warmup_len.min(start);
            Box::new(move || {
                let mut predictor = factory();
                trace.for_each_in(warm_start..start, |record| {
                    predictor.predict_and_update(record);
                });
                let mut counts = WindowCounts::default();
                trace.for_each_in(start..end, |record| {
                    if let Some(prediction) = predictor.predict_and_update(record) {
                        counts.conditional_branches += 1;
                        counts.mispredictions += u64::from(prediction != record.outcome);
                    }
                });
                counts
            }) as Box<dyn Fn() -> WindowCounts + Send + 'static>
        })
        .collect();
    let per_window = run_parallel_with(jobs, workers.max(1), policy).into_complete();
    for counts in &per_window {
        result.conditional_branches += counts.conditional_branches;
        result.mispredictions += counts.mispredictions;
    }
    WindowedRun {
        result,
        plan,
        per_window,
    }
}

/// [`simulate_windowed`] over an experiment [`Factory`]: the front door
/// for windowed and sampled runs of *any* predictor family (gshare,
/// 2Bc-gskew, EV8, TAGE, …) described as a boxed constructor.
///
/// `Box<dyn BranchPredictor>` itself implements [`BranchPredictor`], so
/// this is a thin adapter; it exists so call sites holding the
/// type-erased factories used across [`crate::experiments`] (and the
/// sampling engine) don't each re-derive the closure plumbing.
///
/// [`Factory`]: crate::experiments::Factory
pub fn simulate_windowed_factory(
    factory: &crate::experiments::Factory,
    trace: &Arc<FlatTrace>,
    plan: WindowPlan,
    workers: usize,
    policy: &RunPolicy,
) -> WindowedRun {
    let factory = Arc::clone(factory);
    simulate_windowed(move || factory(), trace, plan, workers, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_flat;
    use ev8_predictors::gshare::Gshare;
    use ev8_trace::{BranchRecord, Pc, TraceBuilder};

    fn dense_trace(records: u64) -> Arc<FlatTrace> {
        let mut b = TraceBuilder::new("windowed");
        let mut x = 0x9E37_79B9u64;
        for i in 0..records {
            x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
            b.run(i % 5);
            b.branch(BranchRecord::conditional(
                Pc::new(0x1000 + (x % 97) * 4),
                Pc::new(0x4000),
                x & 0x30 != 0,
            ));
        }
        Arc::new(FlatTrace::from_trace(&b.finish()))
    }

    #[test]
    fn full_warmup_splice_is_bit_identical_to_serial() {
        let trace = dense_trace(5_000);
        let serial = simulate_flat(Gshare::new(10, 8), &trace);
        let plan = WindowPlan::new(700, trace.len());
        assert!(plan.is_exact_for(trace.len()));
        let run = simulate_windowed(
            || Gshare::new(10, 8),
            &trace,
            plan,
            4,
            &RunPolicy::default(),
        );
        assert_eq!(run.result, serial);
        assert_eq!(run.per_window.len(), plan.windows(trace.len()));
        let spliced: u64 = run.per_window.iter().map(|w| w.mispredictions).sum();
        assert_eq!(spliced, run.result.mispredictions);
    }

    #[test]
    fn single_window_needs_no_warmup_to_be_exact() {
        let trace = dense_trace(300);
        let plan = WindowPlan::new(trace.len().max(1), 0);
        assert!(plan.is_exact_for(trace.len()));
        let run = simulate_windowed(
            || Gshare::new(10, 8),
            &trace,
            plan,
            2,
            &RunPolicy::default(),
        );
        assert_eq!(run.result, simulate_flat(Gshare::new(10, 8), &trace));
    }

    #[test]
    fn zero_warmup_counts_reconcile_even_when_inexact() {
        let trace = dense_trace(4_000);
        let serial = simulate_flat(Gshare::new(10, 8), &trace);
        let run = simulate_windowed(
            || Gshare::new(10, 8),
            &trace,
            WindowPlan::new(512, 0),
            4,
            &RunPolicy::default(),
        );
        // Conditional-branch accounting is exact regardless of warmup —
        // only mispredictions can drift.
        assert_eq!(run.result.conditional_branches, serial.conditional_branches);
        assert_eq!(run.result.instructions, serial.instructions);
        assert_eq!(run.result.trace, serial.trace);
        assert_eq!(run.result.predictor, serial.predictor);
    }

    #[test]
    fn empty_trace_yields_zero_windows() {
        let trace = Arc::new(FlatTrace::from_trace(&ev8_trace::Trace::default()));
        let run = simulate_windowed(
            || Gshare::new(10, 8),
            &trace,
            WindowPlan::new(64, 0),
            2,
            &RunPolicy::default(),
        );
        assert!(run.per_window.is_empty());
        assert_eq!(run.result.conditional_branches, 0);
        assert_eq!(run.result.mispredictions, 0);
    }

    #[test]
    #[should_panic(expected = "window_len must be non-zero")]
    fn zero_window_len_panics() {
        WindowPlan::new(0, 0);
    }
}
