//! Incremental per-session simulation for the prediction service.
//!
//! The trace-driven entry points in [`crate::simulator`] consume a whole
//! [`ev8_trace::Trace`] in one call. A server session cannot: records
//! arrive in frames, the predictor's state must persist *across* traces
//! within the session (the paper's §3 SMT per-thread history argument —
//! one tenant, one predictor), and observability must be sheddable under
//! load without touching prediction accuracy.
//!
//! [`SessionSim`] is the streaming equivalent: feed records as they
//! decode, take a [`SessionSummary`] per trace. Its results are
//! **bit-identical** to [`crate::simulate`] over the same records — the
//! chaos acceptance suite pins concurrent server sessions against serial
//! simulation with exact counter equality.
//!
//! Attribution here is deliberately *bounded*: unlike
//! [`crate::observe::Attribution`], no per-PC histogram is kept — a
//! hostile client could inflate one without limit by streaming fresh
//! PCs. Everything in [`ProvenanceSummary`] is O(1) counters.

use ev8_predictors::observe::ConditionalBranchPredictor;
use ev8_predictors::provenance::UpdateAction;
use ev8_predictors::twobcgskew::ChosenComponent;
use ev8_trace::BranchRecord;

use crate::metrics::SimResult;

/// Bounded, O(1)-memory attribution counters for one streamed trace.
///
/// The counter semantics match [`crate::observe::Attribution`] (minus
/// the per-PC map); degenerate single-component predictors (bimodal,
/// gshare, TAGE) report everything on the side their provenance maps to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProvenanceSummary {
    /// Predictions served by the bimodal side of the chooser.
    pub provider_bimodal: u64,
    /// Predictions served by the e-gskew majority side.
    pub provider_majority: u64,
    /// Mispredictions delivered by the bimodal side.
    pub wrong_by_bimodal: u64,
    /// Mispredictions delivered by the majority side.
    pub wrong_by_majority: u64,
    /// Branches where the two sides disagreed.
    pub meta_decisive: u64,
    /// Decisive branches where the chooser picked the correct side.
    pub meta_correct: u64,
    /// §4.2 update-action histogram, indexed by [`UpdateAction::index`].
    pub actions: [u64; UpdateAction::COUNT],
    /// §6 bank-collision counter (`Some(0)` for a healthy EV8 session).
    pub bank_collisions: Option<u64>,
}

/// The result of one streamed trace within a session: the exact
/// [`SimResult`] a serial [`crate::simulate`] run would produce, plus
/// bounded attribution when it was not shed.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSummary {
    /// Scoreboard counters, bit-identical to serial simulation.
    pub result: SimResult,
    /// Attribution counters; `None` when shed (degraded mode) or never
    /// requested.
    pub attribution: Option<ProvenanceSummary>,
}

/// Streaming simulation state for one client session.
///
/// # Example
///
/// ```
/// use ev8_predictors::gshare::Gshare;
/// use ev8_sim::session::SessionSim;
/// use ev8_trace::{BranchRecord, Pc};
///
/// let mut s = SessionSim::new(Box::new(Gshare::new(10, 8)), true);
/// s.begin("demo", 0);
/// s.feed(&BranchRecord::conditional(Pc::new(0x40), Pc::new(0x80), true).with_gap(4));
/// let summary = s.finish();
/// assert_eq!(summary.result.conditional_branches, 1);
/// assert_eq!(summary.result.instructions, 5); // gap + the branch
/// assert!(summary.attribution.is_some());
/// ```
pub struct SessionSim {
    predictor: Box<dyn ConditionalBranchPredictor>,
    predictor_name: String,
    attribution: bool,
    trace_name: String,
    declared_instructions: u64,
    computed_instructions: u64,
    conditional_branches: u64,
    mispredictions: u64,
    summary: ProvenanceSummary,
}

impl SessionSim {
    /// Wraps a predictor for streaming simulation. With `attribution`
    /// set, every conditional branch goes through the observed step and
    /// [`SessionSummary::attribution`] is populated (sheddable later via
    /// [`SessionSim::shed_attribution`]).
    pub fn new(predictor: Box<dyn ConditionalBranchPredictor>, attribution: bool) -> Self {
        let predictor_name = predictor.name();
        SessionSim {
            predictor,
            predictor_name,
            attribution,
            trace_name: String::new(),
            declared_instructions: 0,
            computed_instructions: 0,
            conditional_branches: 0,
            mispredictions: 0,
            summary: ProvenanceSummary::default(),
        }
    }

    /// The wrapped predictor's display name.
    pub fn predictor_name(&self) -> &str {
        &self.predictor_name
    }

    /// Whether attribution is currently being collected.
    pub fn attribution_enabled(&self) -> bool {
        self.attribution
    }

    /// Sheds attribution work (degraded mode): subsequent records take
    /// the plain prediction path and the next summary carries `None`.
    /// Prediction results are unaffected — the observed and plain steps
    /// are state-identical by contract. Returns whether attribution was
    /// actually on.
    pub fn shed_attribution(&mut self) -> bool {
        std::mem::replace(&mut self.attribution, false)
    }

    /// Starts a new trace, resetting the per-trace counters. Predictor
    /// state (tables, history) deliberately persists — a session models
    /// one hardware context running successive program phases.
    ///
    /// `declared_instructions` is the client-declared total instruction
    /// count (the wire-header field); pass 0 when unknown and the count
    /// is computed from the records (each record contributes
    /// `1 + gap`).
    pub fn begin(&mut self, name: &str, declared_instructions: u64) {
        self.trace_name.clear();
        self.trace_name.push_str(name);
        self.declared_instructions = declared_instructions;
        self.computed_instructions = 0;
        self.conditional_branches = 0;
        self.mispredictions = 0;
        self.summary = ProvenanceSummary::default();
    }

    /// Feeds one record through the predictor, updating the scoreboard.
    pub fn feed(&mut self, record: &BranchRecord) {
        self.computed_instructions += 1 + u64::from(record.gap);
        if self.attribution {
            if let Some(p) = self.predictor.predict_and_update_observed(record) {
                self.conditional_branches += 1;
                let correct = p.correct();
                if !correct {
                    self.mispredictions += 1;
                }
                match p.chosen {
                    ChosenComponent::Bimodal => {
                        self.summary.provider_bimodal += 1;
                        if !correct {
                            self.summary.wrong_by_bimodal += 1;
                        }
                    }
                    ChosenComponent::Majority => {
                        self.summary.provider_majority += 1;
                        if !correct {
                            self.summary.wrong_by_majority += 1;
                        }
                    }
                }
                if p.meta_decisive() {
                    self.summary.meta_decisive += 1;
                    if correct {
                        self.summary.meta_correct += 1;
                    }
                }
                self.summary.actions[p.action.index()] += 1;
            }
        } else if let Some(prediction) = self.predictor.predict_and_update(record) {
            self.conditional_branches += 1;
            if prediction != record.outcome {
                self.mispredictions += 1;
            }
        }
    }

    /// Feeds a decoded chunk of records.
    pub fn feed_all(&mut self, records: &[BranchRecord]) {
        for r in records {
            self.feed(r);
        }
    }

    /// Closes the current trace and returns its summary. The predictor
    /// keeps its state for the session's next trace.
    pub fn finish(&mut self) -> SessionSummary {
        let instructions = if self.declared_instructions > 0 {
            self.declared_instructions
        } else {
            self.computed_instructions
        };
        let result = SimResult {
            trace: self.trace_name.clone(),
            predictor: self.predictor_name.clone(),
            instructions,
            conditional_branches: self.conditional_branches,
            mispredictions: self.mispredictions,
        };
        let attribution = self.attribution.then(|| {
            let mut s = self.summary;
            s.bank_collisions = self.predictor.bank_collisions();
            s
        });
        SessionSummary {
            result,
            attribution,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::simulate;
    use ev8_predictors::bimodal::Bimodal;
    use ev8_predictors::gshare::Gshare;
    use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
    use ev8_trace::{Pc, Trace, TraceBuilder};

    fn patterned_trace(n: u64) -> Trace {
        let mut b = TraceBuilder::new("patterned");
        for i in 0..n {
            b.run(3 + (i % 4));
            b.branch(BranchRecord::conditional(
                Pc::new(0x1000 + (i % 13) * 8),
                Pc::new(0x2000),
                (i / 3) % 2 == 0,
            ));
        }
        b.finish()
    }

    #[test]
    fn session_matches_serial_simulate_exactly() {
        let t = patterned_trace(3000);
        for attribution in [false, true] {
            let serial = simulate(TwoBcGskew::new(TwoBcGskewConfig::equal(10, 10)), &t);
            let mut s = SessionSim::new(
                Box::new(TwoBcGskew::new(TwoBcGskewConfig::equal(10, 10))),
                attribution,
            );
            s.begin(t.name(), t.instruction_count());
            s.feed_all(t.records());
            let summary = s.finish();
            assert_eq!(summary.result, serial, "attribution={attribution}");
            assert_eq!(summary.attribution.is_some(), attribution);
        }
    }

    #[test]
    fn attribution_counters_reconcile_with_scoreboard() {
        let t = patterned_trace(2000);
        let mut s = SessionSim::new(
            Box::new(TwoBcGskew::new(TwoBcGskewConfig::equal(9, 9))),
            true,
        );
        s.begin(t.name(), 0);
        s.feed_all(t.records());
        let summary = s.finish();
        let a = summary.attribution.expect("attribution requested");
        assert_eq!(
            a.provider_bimodal + a.provider_majority,
            summary.result.conditional_branches
        );
        assert_eq!(
            a.wrong_by_bimodal + a.wrong_by_majority,
            summary.result.mispredictions
        );
        assert_eq!(
            a.actions.iter().sum::<u64>(),
            summary.result.conditional_branches
        );
        assert!(a.meta_correct <= a.meta_decisive);
    }

    #[test]
    fn computed_instruction_count_matches_builder() {
        let t = patterned_trace(500);
        let mut s = SessionSim::new(Box::new(Bimodal::new(10)), false);
        s.begin(t.name(), 0);
        s.feed_all(t.records());
        // No trailing straight-line run in this builder pattern, so the
        // computed Σ(1 + gap) equals the builder's count.
        assert_eq!(s.finish().result.instructions, t.instruction_count());
    }

    #[test]
    fn predictor_state_persists_across_traces() {
        // A session that has already seen the pattern mispredicts less on
        // the second pass — the tables were not reset by begin().
        let t = patterned_trace(1500);
        let mut s = SessionSim::new(Box::new(Gshare::new(12, 10)), false);
        s.begin("first", 0);
        s.feed_all(t.records());
        let first = s.finish();
        s.begin("second", 0);
        s.feed_all(t.records());
        let second = s.finish();
        assert!(
            second.result.mispredictions < first.result.mispredictions,
            "second pass {} should beat cold first pass {}",
            second.result.mispredictions,
            first.result.mispredictions
        );
    }

    #[test]
    fn shed_attribution_keeps_predictions_identical() {
        let t = patterned_trace(2000);
        let (head, tail) = t.split_at(1000);

        let mut with = SessionSim::new(Box::new(Gshare::new(11, 9)), true);
        with.begin("full", 0);
        with.feed_all(head.records());
        with.feed_all(tail.records());
        let full = with.finish();

        let mut shed = SessionSim::new(Box::new(Gshare::new(11, 9)), true);
        shed.begin("shed", 0);
        shed.feed_all(head.records());
        assert!(shed.shed_attribution());
        assert!(!shed.attribution_enabled());
        shed.feed_all(tail.records());
        let degraded = shed.finish();

        // Shedding mid-stream changes observability, never predictions.
        assert_eq!(full.result.mispredictions, degraded.result.mispredictions);
        assert!(degraded.attribution.is_none());
    }

    #[test]
    fn declared_instruction_count_wins_when_present() {
        let t = patterned_trace(100);
        let mut s = SessionSim::new(Box::new(Bimodal::new(8)), false);
        s.begin("declared", 12345);
        s.feed_all(t.records());
        assert_eq!(s.finish().result.instructions, 12345);
    }
}
