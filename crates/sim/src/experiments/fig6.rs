//! Figure 6: additional mispredictions when the history length is
//! limited to `log2(table size)` instead of the best length.
//!
//! The paper's point (§5.3, §8.2): "predictors featuring a large number
//! of entries need very long history length and `log2(table size)`
//! history is suboptimal." The log2-limited lengths are 15 (2Bc-gskew
//! 256Kb, all global tables), 16 (512Kb), 17 (bimode), 20 (gshare — its
//! best length *is* log2), 14/15 (YAGS).

use ev8_predictors::bimode::Bimode;
use ev8_predictors::gshare::Gshare;
use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
use ev8_predictors::yags::Yags;

use crate::experiments::{factory, run_grid, suite_flat_traces, Factory};
use crate::report::{ExperimentReport, TextTable};

/// (label, best-history constructor, log2-history constructor) triples.
pub fn config_pairs() -> Vec<(String, Factory, Factory)> {
    vec![
        (
            "2Bc-gskew 256Kb".into(),
            factory(|| TwoBcGskew::new(TwoBcGskewConfig::size_256k())),
            factory(|| {
                TwoBcGskew::new(TwoBcGskewConfig::size_256k().with_history_lengths(0, 15, 15, 15))
            }),
        ),
        (
            "2Bc-gskew 512Kb".into(),
            factory(|| TwoBcGskew::new(TwoBcGskewConfig::size_512k())),
            factory(|| {
                TwoBcGskew::new(TwoBcGskewConfig::size_512k().with_history_lengths(0, 16, 16, 16))
            }),
        ),
        (
            "bimode 544Kb".into(),
            factory(Bimode::paper_544k),
            factory(|| Bimode::new(14, 17, 17)),
        ),
        (
            "gshare 2Mb".into(),
            factory(|| Gshare::new(20, 20)),
            factory(|| Gshare::new(20, 20)), // log2 == best for gshare
        ),
        (
            "YAGS 288Kb".into(),
            factory(Yags::paper_288k),
            factory(|| Yags::new(14, 14, 6, 14)),
        ),
        (
            "YAGS 576Kb".into(),
            factory(Yags::paper_576k),
            factory(|| Yags::new(15, 15, 6, 15)),
        ),
    ]
}

/// Regenerates Figure 6: the *additional* misp/KI of the log2-limited
/// configuration relative to the best-history configuration.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let traces = suite_flat_traces(scale);
    let pairs = config_pairs();
    let mut configs: Vec<(String, Factory)> = Vec::new();
    for (label, best, log2) in &pairs {
        configs.push((format!("{label} best"), best.clone()));
        configs.push((format!("{label} log2"), log2.clone()));
    }
    let grid = run_grid(&traces, &configs, workers);

    let mut headers = vec!["predictor".into()];
    headers.extend(traces.iter().map(|t| t.name().to_owned()));
    headers.push("mean delta".into());
    let mut table = TextTable::new(headers);
    for (i, (label, _, _)) in pairs.iter().enumerate() {
        let best = &grid[2 * i];
        let log2 = &grid[2 * i + 1];
        let mut cells = vec![label.clone()];
        let mut sum = 0.0;
        for (b, l) in best.iter().zip(log2) {
            let delta = l.misp_per_ki() - b.misp_per_ki();
            sum += delta;
            cells.push(format!("{delta:+.3}"));
        }
        cells.push(format!("{:+.3}", sum / best.len() as f64));
        table.row(cells);
    }
    ExperimentReport {
        title: "Figure 6: additional misp/KI with log2(table size) history".into(),
        table,
        notes: vec![
            "positive deltas mean the short history loses accuracy".into(),
            "gshare's row is zero by construction (its best length is log2)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn pairs_cover_the_roster() {
        assert_eq!(config_pairs().len(), 6);
    }

    #[test]
    fn gshare_delta_is_zero() {
        let r = report(0.0005, default_workers());
        // gshare is row 3; all its per-benchmark deltas must be exactly 0.
        for col in 1..=8 {
            let v: f64 = r.table.cell(3, col).parse().unwrap();
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn deltas_are_finite() {
        let r = report(0.0005, default_workers());
        for row in 0..6 {
            for col in 1..=9 {
                let v: f64 = r.table.cell(row, col).parse().unwrap();
                assert!(v.is_finite());
            }
        }
    }
}
