//! Table 3: the lghist/ghist ratio — how many conditional branches one
//! lghist bit represents on average (ghist inserts one bit per branch,
//! lghist one bit per fetch block containing a conditional branch).

use ev8_core::fetch::BlockStats;

use crate::experiments::suite_traces;
use crate::report::{ExperimentReport, TextTable};

/// The paper's Table 3 reference values.
pub fn paper_reference(name: &str) -> Option<f64> {
    Some(match name {
        "compress" => 1.24,
        "gcc" => 1.57,
        "go" => 1.12,
        "ijpeg" => 1.20,
        "li" => 1.55,
        "m88ksim" => 1.53,
        "perl" => 1.32,
        "vortex" => 1.59,
        _ => return None,
    })
}

/// Regenerates Table 3 at the given trace scale.
pub fn report(scale: f64) -> ExperimentReport {
    let traces = suite_traces(scale);
    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "lghist/ghist".into(),
        "paper".into(),
    ]);
    for t in &traces {
        let stats = BlockStats::from_trace(t);
        let paper = paper_reference(t.name()).expect("suite names known");
        table.row(vec![
            t.name().to_owned(),
            format!("{:.2}", stats.lghist_compression_ratio()),
            format!("{paper:.2}"),
        ]);
    }
    ExperimentReport {
        title: "Table 3: conditional branches represented per lghist bit".into(),
        table,
        notes: vec![
            "ratio > 1 means fetch blocks often hold several conditional branches".into(),
            "paper range: 1.12 (go) .. 1.59 (vortex)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_in_a_plausible_band() {
        let r = report(0.002);
        assert_eq!(r.table.len(), 8);
        for row in 0..8 {
            let ratio: f64 = r.table.cell(row, 1).parse().unwrap();
            assert!(
                (1.0..3.0).contains(&ratio),
                "{}: ratio {ratio} implausible",
                r.table.cell(row, 0)
            );
        }
    }

    #[test]
    fn paper_reference_complete() {
        for n in ev8_workloads::spec95::NAMES {
            assert!(paper_reference(n).is_some());
        }
        assert!(paper_reference("nope").is_none());
    }
}
