//! Trace-length convergence study: how misp/KI settles as the trace
//! grows toward the paper's 100M instructions.
//!
//! Not a paper figure, but the calibration context for every comparison
//! in EXPERIMENTS.md: short runs over-weight cold-start (especially for
//! large tables), so the paper's 100M-instruction traces — sampled after
//! skipping 400M instructions — see predictors much closer to steady
//! state than small test runs do.

use std::sync::Arc;

use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
use ev8_trace::Trace;
use ev8_workloads::spec95;

use crate::report::{ExperimentReport, TextTable};
use crate::simulator::simulate;
use crate::sweep::run_parallel;

/// The scales probed (fractions of 100M instructions).
pub const SCALES: [f64; 5] = [0.005, 0.02, 0.08, 0.3, 1.0];

/// Regenerates the convergence study on one benchmark. `max_scale` caps
/// the probed scales (for fast test runs).
pub fn report(benchmark: &str, max_scale: f64, workers: usize) -> ExperimentReport {
    let spec =
        spec95::benchmark(benchmark).unwrap_or_else(|| panic!("unknown benchmark {benchmark:?}"));
    let scales: Vec<f64> = SCALES.iter().copied().filter(|&s| s <= max_scale).collect();
    assert!(!scales.is_empty(), "max_scale below the smallest probe");
    let jobs: Vec<Box<dyn FnOnce() -> (f64, f64) + Send>> = scales
        .iter()
        .map(|&scale| {
            let spec = spec.clone();
            Box::new(move || {
                let t: Arc<Trace> = ev8_workloads::cache::global().get_scaled(&spec, scale);
                let small = simulate(TwoBcGskew::new(TwoBcGskewConfig::size_256k()), &t);
                let large = simulate(TwoBcGskew::new(TwoBcGskewConfig::size_512k()), &t);
                (small.misp_per_ki(), large.misp_per_ki())
            }) as Box<dyn FnOnce() -> (f64, f64) + Send>
        })
        .collect();
    let rows = run_parallel(jobs, workers);

    let mut table = TextTable::new(vec![
        "scale (of 100M)".into(),
        "2Bc-gskew 256Kb".into(),
        "2Bc-gskew 512Kb".into(),
        "512Kb advantage".into(),
    ]);
    for (&scale, (small, large)) in scales.iter().zip(&rows) {
        table.row(vec![
            format!("{scale}"),
            format!("{small:.3}"),
            format!("{large:.3}"),
            format!("{:+.3}", small - large),
        ]);
    }
    ExperimentReport {
        title: format!("Trace-length convergence on {benchmark}"),
        table,
        notes: vec![
            "short traces over-weight cold-start: the larger predictor only pulls ahead \
             once its tables warm up"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn mispki_decreases_with_scale() {
        let r = report("vortex", 0.08, default_workers());
        assert!(r.table.len() >= 3);
        let first: f64 = r.table.cell(0, 2).parse().unwrap();
        let last: f64 = r.table.cell(r.table.len() - 1, 2).parse().unwrap();
        assert!(
            last < first,
            "misp/KI should fall as the trace grows ({first} -> {last})"
        );
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_rejected() {
        report("doom", 1.0, 1);
    }
}
