//! Table 1: characteristics of the Alpha EV8 branch predictor.
//!
//! Not a simulation — the configuration constant itself, printed in the
//! paper's layout and cross-checked against the 352 Kbit budget.

use ev8_core::Ev8Config;

use crate::report::{ExperimentReport, TextTable};

/// Regenerates Table 1 from the implementation's configuration constants.
pub fn report() -> ExperimentReport {
    let c = Ev8Config::ev8();
    let mut table = TextTable::new(vec![
        "table".into(),
        "prediction entries".into(),
        "hysteresis entries".into(),
        "history length".into(),
    ]);
    let fmt_k = |bits: u32| format!("{}K", (1u64 << bits) / 1024);
    for (name, t) in [
        ("BIM", &c.bim),
        ("G0", &c.g0),
        ("G1", &c.g1),
        ("Meta", &c.meta),
    ] {
        table.row(vec![
            name.into(),
            fmt_k(t.index_bits),
            fmt_k(t.hysteresis_index_bits),
            t.history_length.to_string(),
        ]);
    }
    ExperimentReport {
        title: "Table 1: characteristics of the Alpha EV8 branch predictor".into(),
        table,
        notes: vec![
            format!(
                "total {} Kbits = {} Kbits prediction + {} Kbits hysteresis",
                c.storage_bits() / 1024,
                ((1u64 << c.bim.index_bits)
                    + (1u64 << c.g0.index_bits)
                    + (1u64 << c.g1.index_bits)
                    + (1u64 << c.meta.index_bits))
                    / 1024,
                ((1u64 << c.bim.hysteresis_index_bits)
                    + (1u64 << c.g0.hysteresis_index_bits)
                    + (1u64 << c.g1.hysteresis_index_bits)
                    + (1u64 << c.meta.hysteresis_index_bits))
                    / 1024
            ),
            "paper: BIM 16K/16K h4, G0 64K/32K h13, G1 64K/64K h21, Meta 64K/32K h15".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_table1() {
        let r = report();
        assert_eq!(r.table.len(), 4);
        // BIM row.
        assert_eq!(r.table.cell(0, 0), "BIM");
        assert_eq!(r.table.cell(0, 1), "16K");
        assert_eq!(r.table.cell(0, 2), "16K");
        assert_eq!(r.table.cell(0, 3), "4");
        // G0 row: half hysteresis.
        assert_eq!(r.table.cell(1, 1), "64K");
        assert_eq!(r.table.cell(1, 2), "32K");
        assert_eq!(r.table.cell(1, 3), "13");
        // G1 row: full hysteresis.
        assert_eq!(r.table.cell(2, 2), "64K");
        assert_eq!(r.table.cell(2, 3), "21");
        // Meta row.
        assert_eq!(r.table.cell(3, 2), "32K");
        assert_eq!(r.table.cell(3, 3), "15");
        assert!(r.notes[0].contains("352 Kbits"));
        assert!(r.notes[0].contains("208 Kbits prediction"));
        assert!(r.notes[0].contains("144 Kbits hysteresis"));
    }
}
