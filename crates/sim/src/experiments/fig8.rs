//! Figure 8: adjusting table sizes. Base configuration is a 4×64K-entry
//! 2Bc-gskew (512 Kbits) indexed with the EV8 information vector; then:
//!
//! * **small BIM** — BIM reduced from 64K to 16K entries;
//! * **EV8 size** — small BIM plus half-size hysteresis tables for G0 and
//!   Meta, reaching the 352 Kbit budget.
//!
//! Expected shape: the small BIM is free; half hysteresis is barely
//! noticeable except for the largest-footprint benchmark (`go` — "very
//! large footprint and consequently the most sensitive to size
//! reduction").

use ev8_core::{Ev8Config, Ev8Predictor, HistoryMode};
use ev8_predictors::twobcgskew::TableConfig;

use crate::experiments::{factory, mean_mispki, run_grid, suite_flat_traces, Factory};
use crate::report::{fmt_mispki, ExperimentReport, TextTable};

fn base_512k() -> Ev8Config {
    Ev8Config::lghist_512k(HistoryMode::ev8())
}

fn small_bim() -> Ev8Config {
    let mut c = base_512k();
    // Fig 8 isolates the BIM *size* reduction (64K -> 16K entries); the
    // bimodal component stays purely PC-indexed here. (The 4 history bits
    // of the real EV8's BIM come from the shared wordline constraint and
    // are studied separately in Fig 9.)
    c.bim = TableConfig::new(14, 0);
    c
}

fn ev8_size() -> Ev8Config {
    let mut c = small_bim();
    c.g0 = TableConfig::with_half_hysteresis(16, c.g0.history_length);
    c.meta = TableConfig::with_half_hysteresis(16, c.meta.history_length);
    c
}

/// The Fig 8 size roster.
pub fn configs() -> Vec<(String, Factory)> {
    vec![
        (
            "4x64K base (512Kb)".into(),
            factory(|| Ev8Predictor::new(base_512k())),
        ),
        (
            "small BIM (416Kb)".into(),
            factory(|| Ev8Predictor::new(small_bim())),
        ),
        (
            "EV8 size (352Kb)".into(),
            factory(|| Ev8Predictor::new(ev8_size())),
        ),
    ]
}

/// Regenerates Figure 8.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let traces = suite_flat_traces(scale);
    let configs = configs();
    let grid = run_grid(&traces, &configs, workers);

    let mut headers = vec!["configuration".into()];
    headers.extend(traces.iter().map(|t| t.name().to_owned()));
    headers.push("mean".into());
    let mut table = TextTable::new(headers);
    for ((label, _), row) in configs.iter().zip(&grid) {
        let mut cells = vec![label.clone()];
        cells.extend(row.iter().map(|r| fmt_mispki(r.misp_per_ki())));
        cells.push(fmt_mispki(mean_mispki(row)));
        table.row(cells);
    }
    ExperimentReport {
        title: "Figure 8: reducing table sizes (EV8 information vector)".into(),
        table,
        notes: vec!["expected: small BIM free; half hysteresis nearly free except go".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn budgets_shrink_as_labelled() {
        let c = configs();
        let budgets: Vec<u64> = c.iter().map(|(_, f)| f().storage_bits()).collect();
        assert_eq!(budgets[0], 512 * 1024);
        assert_eq!(budgets[1], 416 * 1024); // 512K - 2*48K(BIM shrink)
        assert_eq!(budgets[2], 352 * 1024);
        assert!(budgets[0] > budgets[1] && budgets[1] > budgets[2]);
    }

    #[test]
    fn size_reduction_is_nearly_free() {
        let r = report(0.002, default_workers());
        let mean = |row: usize| -> f64 { r.table.cell(row, 9).parse().unwrap() };
        let base = mean(0);
        let ev8 = mean(2);
        assert!(
            ev8 <= base * 1.3 + 0.5,
            "EV8 size ({ev8}) should be near the 512Kb base ({base})"
        );
    }
}
