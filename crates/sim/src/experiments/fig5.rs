//! Figure 5: branch prediction accuracy for various global history
//! schemes, at memorization sizes in the EV8's range, each with its best
//! history length (per §8.2):
//!
//! * 2Bc-gskew 4×32K (256 Kbits), history 0/13/23/16;
//! * 2Bc-gskew 4×64K (512 Kbits), history 0/17/27/20;
//! * bi-mode 544 Kbits, history 20;
//! * gshare 1M entries (2 Mbits), history 20;
//! * YAGS 288 Kbits (h 23) and 576 Kbits (h 25).
//!
//! Expected shape: 2Bc-gskew at or above bi-mode and gshare at comparable
//! budgets; YAGS ≈ 2Bc-gskew ("no clear winner").

use ev8_predictors::bimode::Bimode;
use ev8_predictors::gshare::Gshare;
use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
use ev8_predictors::yags::Yags;

use crate::experiments::{factory, mean_mispki, run_grid, suite_flat_traces, Factory};
use crate::report::{fmt_mispki, ExperimentReport, TextTable};

/// The Fig 5 predictor roster (label, constructor).
pub fn configs() -> Vec<(String, Factory)> {
    vec![
        (
            "2Bc-gskew 256Kb".into(),
            factory(|| TwoBcGskew::new(TwoBcGskewConfig::size_256k())),
        ),
        (
            "2Bc-gskew 512Kb".into(),
            factory(|| TwoBcGskew::new(TwoBcGskewConfig::size_512k())),
        ),
        ("bimode 544Kb".into(), factory(Bimode::paper_544k)),
        ("gshare 2Mb".into(), factory(|| Gshare::new(20, 20))),
        ("YAGS 288Kb".into(), factory(Yags::paper_288k)),
        ("YAGS 576Kb".into(), factory(Yags::paper_576k)),
    ]
}

/// Regenerates Figure 5.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let traces = suite_flat_traces(scale);
    let configs = configs();
    let grid = run_grid(&traces, &configs, workers);

    let mut headers = vec!["predictor".into()];
    headers.extend(traces.iter().map(|t| t.name().to_owned()));
    headers.push("mean".into());
    let mut table = TextTable::new(headers);
    for ((label, _), row) in configs.iter().zip(&grid) {
        let mut cells = vec![label.clone()];
        cells.extend(row.iter().map(|r| fmt_mispki(r.misp_per_ki())));
        cells.push(fmt_mispki(mean_mispki(row)));
        table.row(cells);
    }
    ExperimentReport {
        title: "Figure 5: misp/KI of global history schemes (best history lengths)".into(),
        table,
        notes: vec![
            "expected shape: 2Bc-gskew <= bimode/gshare at similar budgets; YAGS ~ 2Bc-gskew"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn roster_matches_paper() {
        let c = configs();
        assert_eq!(c.len(), 6);
        // Budgets as advertised.
        let budgets: Vec<u64> = c.iter().map(|(_, f)| f().storage_bits()).collect();
        assert_eq!(
            budgets,
            vec![
                256 * 1024,
                512 * 1024,
                544 * 1024,
                2 * 1024 * 1024,
                288 * 1024,
                576 * 1024
            ]
        );
    }

    #[test]
    fn small_scale_run_produces_sane_numbers() {
        let r = report(0.001, default_workers());
        assert_eq!(r.table.len(), 6);
        for row in 0..6 {
            for col in 1..=8 {
                let v: f64 = r.table.cell(row, col).parse().unwrap();
                assert!(v.is_finite() && (0.0..200.0).contains(&v));
            }
        }
    }
}
