//! §8.1.1 methodology validation: immediate vs commit-time update.
//!
//! "We checked that for branch predictors using (very) long global
//! history as those considered in this study, the relative error in
//! number of branch mispredictions between a trace driven simulation,
//! assuming immediate update, and the complete simulation of the Alpha
//! EV8, assuming predictor update at commit time, is insignificant."
//!
//! The faithful commit-time model keeps the history register speculative
//! (updated at prediction time, as the real front end does) and delays
//! only the counter writes by an in-flight window — the EV8's minimum
//! branch resolution latency is 14 cycles, and with up to 16 branches per
//! cycle a generous window is 64 branches. For contrast, the table also
//! shows the *stale* model (\[8\]): history and tables both delayed, which
//! is catastrophically worse and is why the EV8 maintains speculative
//! history.

use std::collections::VecDeque;
use std::sync::Arc;

use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
use ev8_predictors::BranchPredictor;

use crate::batch::simulate_many;
use crate::experiments::{suite_flat_traces, suite_traces};
use crate::report::{ExperimentReport, TextTable};
use crate::simulator::simulate_stale_update_with_scratch;
use crate::sweep::run_parallel;

/// Regenerates the immediate-vs-commit-time comparison with the given
/// commit window.
pub fn report(scale: f64, workers: usize, window: usize) -> ExperimentReport {
    type Job = Box<dyn FnOnce() -> (f64, f64, f64) + Send>;
    // The immediate and commit-window configs batch over the flat view;
    // the stale model drives predict/update separately and keeps the AoS
    // walk (both views come from one cached generation).
    let traces = suite_traces(scale);
    let flats = suite_flat_traces(scale);
    let jobs: Vec<Job> = traces
        .iter()
        .zip(&flats)
        .map(|(t, flat)| {
            let t = Arc::clone(t);
            let flat = Arc::clone(flat);
            Box::new(move || {
                let mut configs: Vec<Box<dyn BranchPredictor>> = vec![
                    Box::new(TwoBcGskew::new(TwoBcGskewConfig::size_512k())),
                    Box::new(TwoBcGskew::new(
                        TwoBcGskewConfig::size_512k().with_commit_window(window),
                    )),
                ];
                let batched = simulate_many(&mut configs, &flat);
                let mut scratch = VecDeque::new();
                let stale = simulate_stale_update_with_scratch(
                    TwoBcGskew::new(TwoBcGskewConfig::size_512k()),
                    &t,
                    window,
                    &mut scratch,
                );
                (
                    batched[0].misp_per_ki(),
                    batched[1].misp_per_ki(),
                    stale.misp_per_ki(),
                )
            }) as Job
        })
        .collect();
    let results = run_parallel(jobs, workers);

    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "immediate misp/KI".into(),
        format!("commit-time (window {window})"),
        "relative error".into(),
        "stale history (for contrast)".into(),
    ]);
    for (t, (imm, commit, stale)) in traces.iter().zip(&results) {
        let rel = if *imm > 0.0 {
            (commit - imm) / imm
        } else {
            0.0
        };
        table.row(vec![
            t.name().to_owned(),
            format!("{imm:.3}"),
            format!("{commit:.3}"),
            format!("{:+.1}%", rel * 100.0),
            format!("{stale:.3}"),
        ]);
    }
    ExperimentReport {
        title: "Methodology check (§8.1.1): immediate vs commit-time update".into(),
        table,
        notes: vec![
            "the paper reports the immediate/commit-time error as insignificant".into(),
            "the stale column shows why speculative history update is mandatory ([8])".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn commit_time_error_is_small() {
        // Short runs overweight the warmup window; the relative error
        // shrinks further at full scale (recorded in EXPERIMENTS.md).
        let r = report(0.005, default_workers(), 64);
        assert_eq!(r.table.len(), 8);
        for row in 0..8 {
            let imm: f64 = r.table.cell(row, 1).parse().unwrap();
            let commit: f64 = r.table.cell(row, 2).parse().unwrap();
            let rel = if imm > 0.0 {
                (commit - imm).abs() / imm
            } else {
                0.0
            };
            assert!(
                rel < 0.2,
                "{}: relative error {rel} too large ({imm} vs {commit})",
                r.table.cell(row, 0)
            );
        }
    }

    #[test]
    fn stale_history_is_clearly_worse() {
        let r = report(0.002, default_workers(), 64);
        let mut worse = 0;
        for row in 0..8 {
            let imm: f64 = r.table.cell(row, 1).parse().unwrap();
            let stale: f64 = r.table.cell(row, 4).parse().unwrap();
            if stale > imm * 1.1 {
                worse += 1;
            }
        }
        assert!(worse >= 5, "stale should hurt most benchmarks ({worse}/8)");
    }
}
