//! H2P taxonomy study — where the cross-generation accuracy gap lives.
//!
//! "Taming Wild Branches" and the Constantinou/Perais/Sazeides taxonomy
//! (PAPERS.md) both observe that a small set of hard-to-predict (H2P)
//! static branches carries most of the misprediction mass, and that
//! predictor upgrades (EV8 → TAGE) pay off almost entirely on that tail.
//! This experiment reproduces that structure on the synthetic H2P
//! workloads ([`ev8_workloads::h2p`]): each workload concentrates one
//! archetype — data-dependent, input-entropy or timing-jitter branches —
//! on top of a predictable background mix.
//!
//! Per workload, the study runs gshare, the full EV8 and TAGE through
//! the observability layer, ranks every static branch by its EV8
//! misprediction count ([`Attribution`]'s per-PC histogram), and splits
//! the population at the top decile. Three questions, three columns:
//!
//! 1. How concentrated are EV8's mispredictions on the top decile?
//! 2. How much of that decile is H2P-class by construction (the
//!    generator knows each site's archetype — [`h2p::site_classes`])?
//! 3. What fraction of the EV8→TAGE misprediction reduction lands in
//!    the decile?
//!
//! Every run reconciles in-job ([`Attribution::reconcile`]): per-PC
//! sums must match the scoreboard exactly before a row is emitted.

use std::sync::Arc;

use ev8_core::Ev8Predictor;
use ev8_predictors::gshare::Gshare;
use ev8_predictors::tage::{Tage, TageConfig};
use ev8_trace::Trace;
use ev8_workloads::behavior::Behavior;
use ev8_workloads::h2p;

use crate::metrics::SimResult;
use crate::observe::{simulate_observed, Attribution};
use crate::report::{fmt_mispki, ExperimentReport, TextTable};
use crate::sweep::run_parallel;

/// The predictor roster: the paper's EV8 bracketed by its past (gshare
/// at the same 2^17 table budget) and its future (TAGE at the EV8 bit
/// budget).
const ROSTER: [&str; 3] = ["gshare", "ev8", "tage"];

/// One (workload, predictor) observed run.
type Cell = (SimResult, Attribution);

/// Per-workload decile split computed from the observed runs.
#[derive(Clone, Debug)]
pub struct DecileSplit {
    /// Workload name (`h2p::NAMES` entry).
    pub workload: &'static str,
    /// Distinct static conditional branches observed by the EV8 run.
    pub statics: usize,
    /// Static branches in the top decile (ceil of a tenth).
    pub decile: usize,
    /// Share of EV8 mispredictions carried by the top decile, percent.
    pub decile_misp_share: f64,
    /// Share of top-decile branches whose generator archetype is
    /// H2P-class, percent.
    pub decile_h2p_share: f64,
    /// Share of *all* observed static branches that are H2P-class,
    /// percent — the baseline [`Self::decile_h2p_share`] is enriched
    /// against.
    pub static_h2p_share: f64,
    /// EV8 misprediction rate over the H2P-class sites' dynamic
    /// executions, percent.
    pub h2p_misp_rate: f64,
    /// EV8 misprediction rate over the predictable-class sites' dynamic
    /// executions, percent — the taxonomy's dichotomy is per-execution
    /// hardness, so this is the baseline [`Self::h2p_misp_rate`] must
    /// clear.
    pub predictable_misp_rate: f64,
    /// Share of the total EV8→TAGE misprediction reduction that lands
    /// in the top decile, percent (signed sums; can exceed 100 when the
    /// background regresses).
    pub gain_concentration: f64,
    /// Net EV8→TAGE misprediction reduction over all branches (signed).
    pub total_gain: i64,
}

fn percent(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num * 100.0 / den
    }
}

/// Computes the decile split for one workload from its three observed
/// runs (roster order) and the generator's per-site archetype map.
fn split(
    workload: &'static str,
    cells: &[Cell],
    classes: &std::collections::HashMap<u64, &'static str>,
) -> DecileSplit {
    let (_, ev8_attr) = &cells[1];
    let (_, tage_attr) = &cells[2];
    let statics = ev8_attr.static_branches();
    let decile = statics.div_ceil(10).min(statics);
    let ranked = ev8_attr.top_mispredicting(statics);
    let total_misp: u64 = ranked.iter().map(|(_, s)| s.mispredictions).sum();
    let decile_misp: u64 = ranked[..decile].iter().map(|(_, s)| s.mispredictions).sum();
    let is_h2p = |pc: &u64| {
        classes
            .get(pc)
            .is_some_and(|label| Behavior::label_is_h2p(label))
    };
    let h2p_in_decile = ranked[..decile].iter().filter(|(pc, _)| is_h2p(pc)).count();
    let h2p_statics = ranked.iter().filter(|(pc, _)| is_h2p(pc)).count();
    let rate = |want_h2p: bool| {
        let (mut misp, mut pred) = (0u64, 0u64);
        for (pc, s) in &ranked {
            if is_h2p(pc) == want_h2p {
                misp += s.mispredictions;
                pred += s.predictions;
            }
        }
        percent(misp as f64, pred as f64)
    };
    let gain = |pc: u64| -> i64 {
        let ev8 = ev8_attr.pc_stats(pc).map_or(0, |s| s.mispredictions);
        let tage = tage_attr.pc_stats(pc).map_or(0, |s| s.mispredictions);
        ev8 as i64 - tage as i64
    };
    let total_gain: i64 = ranked.iter().map(|(pc, _)| gain(*pc)).sum();
    let decile_gain: i64 = ranked[..decile].iter().map(|(pc, _)| gain(*pc)).sum();
    DecileSplit {
        workload,
        statics,
        decile,
        decile_misp_share: percent(decile_misp as f64, total_misp as f64),
        decile_h2p_share: percent(h2p_in_decile as f64, decile as f64),
        static_h2p_share: percent(h2p_statics as f64, statics as f64),
        h2p_misp_rate: rate(true),
        predictable_misp_rate: rate(false),
        gain_concentration: percent(decile_gain as f64, total_gain as f64),
        total_gain,
    }
}

/// Runs the taxonomy study: 3 H2P workloads × {gshare, EV8, TAGE},
/// observed and reconciled, split at the EV8 top decile.
pub fn splits(scale: f64, workers: usize) -> (Vec<DecileSplit>, Vec<Vec<Cell>>) {
    let traces: Vec<Arc<Trace>> = h2p::NAMES
        .iter()
        .map(|name| h2p::cached(name, scale).expect("h2p names are known"))
        .collect();
    let jobs: Vec<Box<dyn FnOnce() -> Cell + Send>> = traces
        .iter()
        .flat_map(|trace| {
            ROSTER.iter().map(|predictor| {
                let trace = Arc::clone(trace);
                let predictor = *predictor;
                Box::new(move || {
                    let mut attr = Attribution::new();
                    let result = match predictor {
                        "gshare" => simulate_observed(Gshare::new(17, 17), &trace, &mut attr),
                        "ev8" => simulate_observed(Ev8Predictor::ev8(), &trace, &mut attr),
                        _ => simulate_observed(
                            Tage::new(TageConfig::ev8_budget()),
                            &trace,
                            &mut attr,
                        ),
                    };
                    attr.reconcile(&result)
                        .expect("per-PC histogram must reconcile with the scoreboard");
                    (result, attr)
                }) as Box<dyn FnOnce() -> Cell + Send>
            })
        })
        .collect();
    let mut flat = run_parallel(jobs, workers);
    let mut cells: Vec<Vec<Cell>> = Vec::with_capacity(h2p::NAMES.len());
    for _ in h2p::NAMES {
        let rest = flat.split_off(ROSTER.len());
        cells.push(std::mem::replace(&mut flat, rest));
    }
    let rows = h2p::NAMES
        .iter()
        .zip(&cells)
        .map(|(name, cells)| {
            let spec = h2p::workload(name).expect("h2p names are known");
            split(name, cells, &h2p::site_classes(&spec))
        })
        .collect();
    (rows, cells)
}

/// Regenerates the H2P taxonomy table. `scale` is the fraction of a
/// 100M-instruction trace per workload.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let (rows, cells) = splits(scale, workers);
    let mut table = TextTable::new(vec![
        "workload".into(),
        "statics".into(),
        "top-decile".into(),
        "gshare misp/KI".into(),
        "EV8 misp/KI".into(),
        "TAGE misp/KI".into(),
        "decile misp share %".into(),
        "decile H2P-class %".into(),
        "static H2P-class %".into(),
        "H2P/easy misp rate %".into(),
        "EV8→TAGE gain in decile %".into(),
    ]);
    for (row, cells) in rows.iter().zip(&cells) {
        table.row(vec![
            row.workload.to_owned(),
            row.statics.to_string(),
            row.decile.to_string(),
            fmt_mispki(cells[0].0.misp_per_ki()),
            fmt_mispki(cells[1].0.misp_per_ki()),
            fmt_mispki(cells[2].0.misp_per_ki()),
            format!("{:.1}", row.decile_misp_share),
            format!("{:.1}", row.decile_h2p_share),
            format!("{:.1}", row.static_h2p_share),
            format!("{:.1}/{:.1}", row.h2p_misp_rate, row.predictable_misp_rate),
            format!("{:.1}", row.gain_concentration),
        ]);
    }
    ExperimentReport {
        title: "H2P taxonomy: the EV8/TAGE gap concentrates in the hard-branch tail".into(),
        table,
        notes: vec![
            "branches ranked by EV8 misprediction count (Attribution per-PC histogram), \
             split at the top decile"
                .into(),
            "every run reconciled exactly: per-PC sums match the scoreboard before a row \
             is emitted"
                .into(),
            "decile H2P-class % uses the generator's own site archetypes — the taxonomy \
             is ground truth, not inferred"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    const SCALE: f64 = 0.002;

    #[test]
    fn one_row_per_h2p_workload_with_reconciled_totals() {
        let (rows, cells) = splits(SCALE, default_workers());
        assert_eq!(rows.len(), h2p::NAMES.len());
        for (row, cells) in rows.iter().zip(&cells) {
            assert!(row.statics > 0);
            assert_eq!(row.decile, row.statics.div_ceil(10));
            // Reconciliation already ran in-job; cross-check the ranked
            // histogram against the scoreboard once more from outside.
            let ranked = cells[1].1.top_mispredicting(row.statics);
            let total: u64 = ranked.iter().map(|(_, s)| s.mispredictions).sum();
            assert_eq!(total, cells[1].0.mispredictions, "{}", row.workload);
            assert!((0.0..=100.0).contains(&row.decile_misp_share));
            assert!((0.0..=100.0).contains(&row.decile_h2p_share));
        }
    }

    #[test]
    fn gap_concentrates_in_the_h2p_tail() {
        let (rows, cells) = splits(SCALE, default_workers());
        for (row, cells) in rows.iter().zip(&cells) {
            // The roster ordering the study is about: TAGE beats the
            // EV8 on H2P-heavy workloads, both beat nothing — and the
            // improvement lands in the top decile.
            assert!(row.total_gain > 0, "{}: EV8→TAGE gain", row.workload);
            // A uniform spread would put ~10% of the gain in the top
            // decile; 40%+ is a 4x concentration.
            assert!(
                row.gain_concentration > 40.0,
                "{}: only {:.1}% of the EV8→TAGE gain is in the top decile",
                row.workload,
                row.gain_concentration
            );
            assert!(
                row.decile_misp_share > 50.0,
                "{}: decile carries {:.1}% of mispredictions",
                row.workload,
                row.decile_misp_share
            );
            // The taxonomy's dichotomy is per-execution hardness, not
            // decile membership (hot predictable sites can out-mass
            // cold H2P sites on absolute counts): H2P-class sites must
            // mispredict at a multiple of the predictable background's
            // rate.
            // At least 1.5× at this tiny test scale — cold-start
            // transients inflate the background rate and compress the
            // gap; at full scale the multiple is 3-7×.
            assert!(
                row.h2p_misp_rate > 1.5 * row.predictable_misp_rate,
                "{}: H2P sites mispredict at {:.2}% vs {:.2}% background",
                row.workload,
                row.h2p_misp_rate,
                row.predictable_misp_rate
            );
            let _ = cells;
        }
    }

    #[test]
    fn report_is_deterministic_across_worker_counts() {
        let a = report(0.001, default_workers());
        let b = report(0.001, 1);
        assert_eq!(a.table.to_csv(), b.table.to_csv());
    }
}
