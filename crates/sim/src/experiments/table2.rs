//! Table 2: benchmark characteristics — dynamic conditional branches
//! (×1000, normalized to 100M instructions) and static conditional
//! branches, generated vs the paper's reference values.

use ev8_trace::TraceStats;
use ev8_workloads::spec95;

use crate::experiments::suite_traces;
use crate::report::{ExperimentReport, TextTable};

/// Regenerates Table 2 at the given trace scale.
pub fn report(scale: f64) -> ExperimentReport {
    let traces = suite_traces(scale);
    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "dyn. cond. x1000 (per 100M)".into(),
        "paper".into(),
        "static cond.".into(),
        "paper".into(),
    ]);
    for t in &traces {
        let stats = TraceStats::from_trace(t);
        let (paper_dyn, paper_static) =
            spec95::table2_reference(t.name()).expect("suite names are known");
        // Normalize the dynamic count to the paper's 100M-instruction
        // baseline so scaled runs are comparable.
        let dyn_per_100m_k =
            stats.dynamic_conditional as f64 * (100_000_000.0 / stats.instructions as f64) / 1000.0;
        table.row(vec![
            t.name().to_owned(),
            format!("{dyn_per_100m_k:.0}"),
            paper_dyn.to_string(),
            stats.static_conditional.to_string(),
            paper_static.to_string(),
        ]);
    }
    ExperimentReport {
        title: "Table 2: benchmark characteristics (generated vs paper)".into(),
        table,
        notes: vec![
            "dynamic counts are calibrated through the branch-density target".into(),
            format!(
                "static counts converge to the paper's values as scale -> 1.0 (run at {scale})"
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_rows_tracking_paper() {
        let r = report(0.002);
        assert_eq!(r.table.len(), 8);
        for row in 0..8 {
            let gen_dyn: f64 = r.table.cell(row, 1).parse().unwrap();
            let paper_dyn: f64 = r.table.cell(row, 2).parse().unwrap();
            let rel = (gen_dyn - paper_dyn).abs() / paper_dyn;
            assert!(
                rel < 0.5,
                "{}: generated {gen_dyn} too far from paper {paper_dyn}",
                r.table.cell(row, 0)
            );
            let gen_static: u64 = r.table.cell(row, 3).parse().unwrap();
            let paper_static: u64 = r.table.cell(row, 4).parse().unwrap();
            assert!(gen_static <= paper_static);
            assert!(gen_static > 0);
        }
    }
}
