//! The §9 future-work proposal, evaluated: a confidence-gated perceptron
//! *backup predictor* behind the EV8 predictor ("line predictor, global
//! history branch prediction, backup branch predictor").
//!
//! For every benchmark the table reports the EV8's misp/KI, the
//! hierarchy's misp/KI, the net mispredictions removed, and the override
//! precision (fraction of backup overrides that were beneficial — each
//! override costs a late front-end resteer, so precision matters as much
//! as volume).

use std::sync::Arc;

use ev8_core::backup::BackupHierarchy;
use ev8_predictors::BranchPredictor;
use ev8_trace::Trace;

use crate::experiments::suite_traces;
use crate::report::{ExperimentReport, TextTable};
use crate::sweep::run_parallel;

/// Runs the hierarchy over one trace; returns (primary misp/KI,
/// hierarchy misp/KI, overrides, precision).
fn run_one(trace: &Trace) -> (f64, f64, u64, f64) {
    let mut h = BackupHierarchy::default_hierarchy();
    for rec in trace.iter() {
        h.predict_and_update(rec);
    }
    let s = *h.stats();
    let ki = trace.instruction_count() as f64 / 1000.0;
    (
        s.primary_mispredictions as f64 / ki,
        s.hierarchy_mispredictions as f64 / ki,
        s.overrides,
        s.override_precision(),
    )
}

/// Regenerates the backup-hierarchy study.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    type Row = (f64, f64, u64, f64);
    let traces = suite_traces(scale);
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = traces
        .iter()
        .map(|t| {
            let t: Arc<Trace> = Arc::clone(t);
            Box::new(move || run_one(&t)) as Box<dyn FnOnce() -> Row + Send>
        })
        .collect();
    let rows = run_parallel(jobs, workers);

    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "EV8 misp/KI".into(),
        "with backup".into(),
        "overrides".into(),
        "override precision".into(),
    ]);
    for (t, (primary, hierarchy, overrides, precision)) in traces.iter().zip(&rows) {
        table.row(vec![
            t.name().to_owned(),
            format!("{primary:.3}"),
            format!("{hierarchy:.3}"),
            overrides.to_string(),
            format!("{:.1}%", precision * 100.0),
        ]);
    }
    ExperimentReport {
        title: "§9 extension: perceptron backup predictor behind the EV8".into(),
        table,
        notes: vec![
            "the backup targets hard-to-predict branches; precision > 50% means net gain".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn backup_does_not_hurt_overall() {
        let r = report(0.005, default_workers());
        assert_eq!(r.table.len(), 8);
        let mut improved = 0;
        for row in 0..8 {
            let primary: f64 = r.table.cell(row, 1).parse().unwrap();
            let hierarchy: f64 = r.table.cell(row, 2).parse().unwrap();
            if hierarchy <= primary + 0.05 {
                improved += 1;
            }
        }
        assert!(
            improved >= 6,
            "the gated backup should rarely hurt ({improved}/8 within bounds)"
        );
    }
}
