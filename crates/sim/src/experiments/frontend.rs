//! Front-end substrate report (§2 of the paper): per-benchmark accuracy
//! of the three PC-address-generation predictors that surround the
//! conditional branch predictor — the weak line predictor, the return
//! address stack, and the indirect jump predictor — plus the fetch-block
//! geometry they operate on.
//!
//! Not a figure in the paper, but the §2 narrative this reproduction's
//! front-end substrate must support: the line predictor is fast and weak
//! ("relatively low line prediction accuracy"), which is why the EV8
//! devotes 352 Kbits to the backing conditional branch predictor.

use ev8_core::fetch::{blocks_of, BlockStats};
use ev8_core::line_predictor::LinePredictor;
use ev8_core::ras::{JumpPredictor, ReturnAddressStack};
use ev8_trace::{BranchKind, Trace};

use crate::experiments::suite_traces;
use crate::report::{ExperimentReport, TextTable};

/// Per-benchmark front-end accuracies.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontEndAccuracy {
    /// Line predictor next-block accuracy.
    pub line: f64,
    /// Return address stack accuracy over returns.
    pub ras: f64,
    /// Indirect jump predictor accuracy (last-target).
    pub jump: f64,
    /// Mean fetch-block size in instructions.
    pub block_size: f64,
}

/// Measures the front-end predictors over one trace.
pub fn measure(trace: &Trace) -> FrontEndAccuracy {
    // Line predictor over the fetch-block stream.
    let blocks = blocks_of(trace);
    let mut lp = LinePredictor::new(12);
    let mut prev = None;
    for b in &blocks {
        if let Some(p) = prev {
            lp.train(p, b.start);
        }
        prev = Some(b.start);
    }

    // RAS and jump predictor over the control-transfer stream. The RAS
    // is sized *below* the workloads' maximum call depth so that deep
    // recursion (the li analogue) visibly overflows it.
    let mut ras = ReturnAddressStack::new(8);
    let mut jp = JumpPredictor::new(10, 6);
    for rec in trace.iter() {
        match rec.kind {
            BranchKind::Call => ras.push(rec.pc.next()),
            BranchKind::Return => {
                ras.predict_return(rec.target);
            }
            BranchKind::IndirectJump => jp.train(rec.pc, rec.target),
            _ => {}
        }
    }

    FrontEndAccuracy {
        line: lp.accuracy(),
        ras: ras.accuracy(),
        jump: jp.accuracy(),
        block_size: BlockStats::from_trace(trace).mean_block_size(),
    }
}

/// Regenerates the front-end substrate report.
pub fn report(scale: f64) -> ExperimentReport {
    let traces = suite_traces(scale);
    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "line predictor".into(),
        "return stack".into(),
        "block size".into(),
    ]);
    for t in &traces {
        let a = measure(t);
        table.row(vec![
            t.name().to_owned(),
            format!("{:.1}%", a.line * 100.0),
            format!("{:.1}%", a.ras * 100.0),
            format!("{:.2}", a.block_size),
        ]);
    }
    ExperimentReport {
        title: "Front-end substrate (§2): line predictor, RAS, fetch blocks".into(),
        table,
        notes: vec![
            "the line predictor is deliberately weak — the conditional predictor backs it up"
                .into(),
            "the RAS is near-perfect except where call depth exceeds its capacity".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev8_workloads::spec95;

    #[test]
    fn ras_is_strong_line_predictor_weak() {
        let t = spec95::cached("li", 0.005).unwrap();
        let a = measure(&t);
        assert!(a.ras > 0.9, "RAS accuracy {} too low", a.ras);
        assert!(
            a.line < 0.98,
            "line predictor should not be near-perfect: {}",
            a.line
        );
        assert!(a.block_size > 1.0 && a.block_size <= 8.0);
    }

    #[test]
    fn report_covers_all_benchmarks() {
        let r = report(0.001);
        assert_eq!(r.table.len(), 8);
        for row in 0..8 {
            let line: f64 = r.table.cell(row, 1).trim_end_matches('%').parse().unwrap();
            assert!((0.0..=100.0).contains(&line));
        }
    }
}
