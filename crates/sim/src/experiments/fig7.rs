//! Figure 7: impact of the information vector on prediction accuracy,
//! on a 4×64K-entry 2Bc-gskew with unconstrained (complete-hash)
//! indexing:
//!
//! * **ghist** — conventional per-branch history (lengths 17/27/20);
//! * **lghist, no path** — block-compressed history without the PC-bit-4
//!   XOR (lghist-optimal lengths 15/23/17);
//! * **lghist+path** — block-compressed with path bit;
//! * **3-old lghist** — same, three fetch blocks late;
//! * **EV8 info vector** — 3-old lghist+path plus path information from
//!   the last three block addresses.
//!
//! Expected shape: lghist ≈ ghist; path bit mildly beneficial; 3-old
//! slightly worse; the EV8 vector recovers most of the delayed-history
//! loss.

use ev8_core::{Ev8Config, Ev8Predictor, HistoryMode};

use crate::experiments::{factory, mean_mispki, run_grid, suite_flat_traces, Factory};
use crate::report::{fmt_mispki, ExperimentReport, TextTable};

/// The Fig 7 information-vector roster.
pub fn configs() -> Vec<(String, Factory)> {
    vec![
        (
            "ghist".into(),
            factory(|| Ev8Predictor::new(Ev8Config::unconstrained_512k())),
        ),
        (
            "lghist, no path".into(),
            factory(|| Ev8Predictor::new(Ev8Config::lghist_512k(HistoryMode::lghist_no_path()))),
        ),
        (
            "lghist+path".into(),
            factory(|| Ev8Predictor::new(Ev8Config::lghist_512k(HistoryMode::lghist_path()))),
        ),
        (
            "3-old lghist".into(),
            factory(|| Ev8Predictor::new(Ev8Config::lghist_512k(HistoryMode::lghist_3old()))),
        ),
        (
            "EV8 info vector".into(),
            factory(|| Ev8Predictor::new(Ev8Config::lghist_512k(HistoryMode::ev8()))),
        ),
    ]
}

/// Regenerates Figure 7.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let traces = suite_flat_traces(scale);
    let configs = configs();
    let grid = run_grid(&traces, &configs, workers);

    let mut headers = vec!["information vector".into()];
    headers.extend(traces.iter().map(|t| t.name().to_owned()));
    headers.push("mean".into());
    let mut table = TextTable::new(headers);
    for ((label, _), row) in configs.iter().zip(&grid) {
        let mut cells = vec![label.clone()];
        cells.extend(row.iter().map(|r| fmt_mispki(r.misp_per_ki())));
        cells.push(fmt_mispki(mean_mispki(row)));
        table.row(cells);
    }
    ExperimentReport {
        title: "Figure 7: impact of the information vector (4x64K 2Bc-gskew, complete hash)".into(),
        table,
        notes: vec![
            "expected: lghist ~ ghist; 3-old slightly worse; EV8 vector recovers most loss".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn five_information_vectors() {
        let c = configs();
        assert_eq!(c.len(), 5);
        // All five share the 512 Kbit budget.
        for (_, f) in &c {
            assert_eq!(f().storage_bits(), 512 * 1024);
        }
    }

    #[test]
    fn ev8_vector_recovers_delayed_loss() {
        // Shape assertion at small scale: the EV8 vector (row 4) should
        // not be drastically worse than immediate lghist+path (row 2),
        // and 3-old (row 3) should not beat lghist+path by much.
        let r = report(0.002, default_workers());
        let mean = |row: usize| -> f64 { r.table.cell(row, 9).parse().unwrap() };
        let lghist_path = mean(2);
        let three_old = mean(3);
        let ev8 = mean(4);
        // Small-scale runs are noisy; the full-scale shape is recorded in
        // EXPERIMENTS.md. Here we assert the broad ordering only.
        assert!(
            ev8 <= three_old * 1.15 + 0.5,
            "EV8 vector ({ev8}) should be near or below 3-old lghist ({three_old})"
        );
        assert!(
            (ev8 - lghist_path).abs() < lghist_path * 0.5 + 1.0,
            "EV8 vector ({ev8}) should be near immediate lghist ({lghist_path})"
        );
    }
}
