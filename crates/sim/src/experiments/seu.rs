//! Soft-error resilience study — misprediction rate under single-event
//! upsets in the predictor arrays.
//!
//! The EV8 predictor is 352 Kbit of SRAM whose contents are purely
//! speculative: an upset cell can never corrupt architectural state, only
//! cost mispredictions. That makes *misp/KI versus fault rate* the right
//! resilience metric, and the paper's own structures predict its shape —
//! the majority vote tolerates single-bank damage, and the shared
//! half-size hysteresis arrays (§4.3-4.4) hold *second-bit* state whose
//! loss only weakens confirmation, so hysteresis-targeted damage should
//! degrade more gracefully than prediction-bit damage.
//!
//! The sweep runs under the hardened runner
//! ([`run_parallel_with`]) in degraded mode with a retry budget, so one
//! wedged or panicking cell of the grid reports a failure instead of
//! killing the whole campaign.

use std::sync::Arc;

use ev8_faults::{ArraySelector, FaultPlan};
use ev8_predictors::introspect::ArrayClass;
use ev8_predictors::twobcgskew::{TableConfig, TwoBcGskew, TwoBcGskewConfig, UpdatePolicy};
use ev8_trace::Trace;
use ev8_util::rng::mix;
use ev8_workloads::spec95;

use crate::report::{ExperimentReport, TextTable};
use crate::simulator::simulate_with_faults;
use crate::sweep::{run_parallel_with, RunPolicy};

/// Per-branch SEU probabilities swept (0 = fault-free baseline). Real
/// soft-error rates are far lower; the sweep compresses the wall-clock a
/// silicon lifetime into one trace by raising the strike rate.
pub const FAULT_RATES: [f64; 5] = [0.0, 1e-4, 1e-3, 1e-2, 5e-2];

/// The benchmarks swept (a 3-benchmark cut of the suite keeps the grid —
/// benchmarks × rates × targets — tractable).
pub const BENCHMARKS: [&str; 3] = ["compress", "gcc", "go"];

/// Which array population each column of the default report targets
/// (the EV8-generation split: whole predictor, prediction bits only,
/// hysteresis bits only).
pub const TARGETS: [(&str, ArraySelector); 3] = [
    ("all arrays", ArraySelector::All),
    (
        "prediction only",
        ArraySelector::Class(ArrayClass::Prediction),
    ),
    (
        "hysteresis only",
        ArraySelector::Class(ArrayClass::Hysteresis),
    ),
];

/// The default subject: a 2Bc-gskew with EV8-style shared half-size
/// hysteresis, sized so the sweep's strike counts are significant against
/// the array population at test scales.
fn default_predictor() -> TwoBcGskew {
    TwoBcGskew::new(TwoBcGskewConfig {
        bim: TableConfig::new(10, 0),
        g0: TableConfig::with_half_hysteresis(10, 8),
        g1: TableConfig::new(10, 12),
        meta: TableConfig::with_half_hysteresis(10, 10),
        update_policy: UpdatePolicy::Partial,
        commit_window: 0,
    })
}

/// One cell of the sweep: misp/KI plus the number of faults that landed.
type Cell = (f64, u64);

/// Regenerates the SEU degradation study for the default subject (the
/// half-hysteresis 2Bc-gskew). `scale` is the fraction of a
/// 100M-instruction trace per benchmark.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let mut r = report_for(
        scale,
        workers,
        "2Bc-gskew, half hysteresis",
        super::unified_factory(default_predictor),
        &TARGETS,
    );
    r.notes.insert(
        1,
        "hysteresis-only damage degrades more gently than prediction-bit damage (§4.3)".into(),
    );
    r
}

/// [`report`] for an arbitrary predictor: the campaign quantifies over
/// the unified capability trait (see [`super::UnifiedFactory`]), so any
/// family whose storage is introspectable — bimodal, gshare, 2Bc-gskew,
/// the full EV8, TAGE — runs through the same grid. `label` names the subject in the
/// report title, and `targets` picks the array populations to strike
/// (one misp/KI column each; every selector must match at least one of
/// the subject's arrays — e.g. TAGE has `Counter`/`Tag`/`Useful`
/// classes, not the EV8 generation's `Prediction`/`Hysteresis`).
///
/// Returns one row per (benchmark, rate) with a misp/KI column per fault
/// target. Every cell is deterministic: the injection seed is derived
/// from the (benchmark, rate, target) coordinates.
pub fn report_for(
    scale: f64,
    workers: usize,
    label: &str,
    factory: super::UnifiedFactory,
    targets: &[(&str, ArraySelector)],
) -> ExperimentReport {
    let traces: Vec<Arc<Trace>> = BENCHMARKS
        .iter()
        .map(|name| spec95::cached(name, scale).expect("benchmark names are known"))
        .collect();

    let mut jobs: Vec<Box<dyn Fn() -> Cell + Send>> = Vec::new();
    for (b, trace) in traces.iter().enumerate() {
        for (r, &rate) in FAULT_RATES.iter().enumerate() {
            for (t, &(_, selector)) in targets.iter().enumerate() {
                let trace = Arc::clone(trace);
                let factory = Arc::clone(&factory);
                let seed = mix((b as u64) << 32 | (r as u64) << 16 | t as u64);
                jobs.push(Box::new(move || {
                    let plan = FaultPlan::seu(rate).targeting(selector).with_seed(seed);
                    let (result, log) = simulate_with_faults(factory(), &trace, plan);
                    (result.misp_per_ki(), log.injected())
                }));
            }
        }
    }

    // Degraded mode with a small retry budget: a failed cell becomes a
    // hole in the table, not a dead campaign.
    let policy = RunPolicy::default()
        .with_retries(1, std::time::Duration::from_millis(20))
        .with_seed(0x5E0)
        .degraded();
    let outcome = run_parallel_with(jobs, workers, &policy);

    let mut headers = vec!["benchmark".to_string(), "SEU rate/branch".to_string()];
    for (label, _) in targets {
        headers.push(format!("misp/KI ({label})"));
    }
    headers.push("faults (all)".to_string());
    let mut table = TextTable::new(headers);

    let mut cells = outcome.results.iter();
    for (b, _) in BENCHMARKS.iter().enumerate() {
        for &rate in FAULT_RATES.iter() {
            let mut row = vec![BENCHMARKS[b].to_string(), format!("{rate:.0e}")];
            let mut all_faults = None;
            for t in 0..targets.len() {
                let cell = cells.next().expect("grid covers every coordinate");
                match cell {
                    Some((mispki, injected)) => {
                        row.push(format!("{mispki:.3}"));
                        if t == 0 {
                            all_faults = Some(*injected);
                        }
                    }
                    None => row.push("failed".to_string()),
                }
            }
            row.push(all_faults.map_or_else(|| "failed".to_string(), |n| n.to_string()));
            table.row(row);
        }
    }

    let mut notes =
        vec!["predictor state is speculative: faults cost accuracy, never correctness".into()];
    for failure in &outcome.failures {
        notes.push(format!("degraded: {failure}"));
    }
    ExperimentReport {
        title: format!("SEU resilience: misp/KI vs per-branch fault rate ({label})"),
        table,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    fn column(r: &ExperimentReport, bench: usize, col: usize) -> Vec<f64> {
        (0..FAULT_RATES.len())
            .map(|i| {
                r.table
                    .cell(bench * FAULT_RATES.len() + i, col)
                    .parse()
                    .expect("cell is numeric")
            })
            .collect()
    }

    #[test]
    fn degradation_is_monotone_within_noise_on_every_benchmark() {
        let r = report(0.002, default_workers());
        assert_eq!(r.table.len(), BENCHMARKS.len() * FAULT_RATES.len());
        for (b, bench) in BENCHMARKS.iter().enumerate() {
            // The "all arrays" column: endpoints must separate cleanly...
            let curve = column(&r, b, 2);
            assert!(
                curve[FAULT_RATES.len() - 1] > curve[0],
                "{bench}: fault storm {curve:?} should degrade the fault-free baseline"
            );
            // ...and each step may regress only within noise (small
            // sample jitter), never by a structural amount.
            for w in curve.windows(2) {
                assert!(
                    w[1] >= w[0] * 0.9 - 0.25,
                    "{bench}: non-monotone step {w:?} in {curve:?}"
                );
            }
        }
    }

    #[test]
    fn hysteresis_damage_is_gentler_than_prediction_damage() {
        let r = report(0.002, default_workers());
        // Sum the top-rate rows across benchmarks to beat the noise.
        let (mut pred, mut hyst) = (0.0, 0.0);
        for b in 0..BENCHMARKS.len() {
            pred += column(&r, b, 3)[FAULT_RATES.len() - 1];
            hyst += column(&r, b, 4)[FAULT_RATES.len() - 1];
        }
        assert!(
            hyst < pred,
            "hysteresis-targeted ({hyst:.3}) should degrade less than prediction-targeted ({pred:.3})"
        );
    }

    #[test]
    fn zero_rate_rows_agree_across_targets() {
        // At rate 0 the selector is irrelevant: all three columns are the
        // same fault-free simulation.
        let r = report(0.001, default_workers());
        for b in 0..BENCHMARKS.len() {
            let row = b * FAULT_RATES.len();
            let all = r.table.cell(row, 2);
            assert_eq!(all, r.table.cell(row, 3));
            assert_eq!(all, r.table.cell(row, 4));
            assert_eq!(r.table.cell(row, 5), "0");
        }
    }

    #[test]
    fn campaign_runs_any_unified_predictor() {
        // The seam the unified trait removed: the same grid, driven by a
        // TAGE factory and TAGE-generation array classes instead of the
        // built-in 2Bc-gskew. A storm into the tagged entries must
        // degrade the fault-free baseline, and no cell may fail.
        use ev8_predictors::tage::{Tage, TageConfig};
        let targets = [
            ("all arrays", ArraySelector::All),
            ("ctr only", ArraySelector::Class(ArrayClass::Counter)),
            ("tags only", ArraySelector::Class(ArrayClass::Tag)),
        ];
        // A deliberately tiny TAGE: at test scales the strike count must
        // be significant against the array population, and TAGE soaks up
        // damage gracefully (a corrupted tag is just a miss that falls
        // back to the base table), so a large instance barely moves.
        let r = report_for(
            0.001,
            default_workers(),
            "TAGE 7 Kbit",
            crate::experiments::unified_factory(|| {
                Tage::new(TageConfig::geometric(7, 4, 7, 8, 4, 21))
            }),
            &targets,
        );
        assert!(r.title.contains("TAGE 7 Kbit"));
        assert_eq!(r.table.len(), BENCHMARKS.len() * FAULT_RATES.len());
        assert!(
            r.notes.iter().all(|n| !n.starts_with("degraded:")),
            "unexpected failures: {:?}",
            r.notes
        );
        // Sum the all-arrays column across benchmarks to beat per-cell
        // noise: the storm endpoint must sit above the fault-free floor.
        let (mut clean, mut storm) = (0.0, 0.0);
        for b in 0..BENCHMARKS.len() {
            let curve = column(&r, b, 2);
            clean += curve[0];
            storm += curve[FAULT_RATES.len() - 1];
        }
        assert!(
            storm > clean,
            "fault storm ({storm:.3}) should degrade the fault-free baseline ({clean:.3})"
        );
    }

    #[test]
    fn campaign_completes_without_degradation_report() {
        // The smoke contract: no cell panics, no cell times out — the
        // notes contain no "degraded:" lines.
        let r = report(0.0005, default_workers());
        assert!(
            r.notes.iter().all(|n| !n.starts_with("degraded:")),
            "unexpected failures: {:?}",
            r.notes
        );
    }
}
