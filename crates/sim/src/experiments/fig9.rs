//! Figure 9: effect of the wordline-index and index-function constraints
//! (on the 352 Kbit EV8 geometry, three-blocks-old history):
//!
//! * **address only, no path** — shared wordline from PC bits only, no
//!   path bit in lghist;
//! * **address only, path** — PC-only wordline, path bit in lghist;
//! * **no path** — the EV8 wordline (4 history + 2 address bits) but no
//!   path bit in lghist;
//! * **EV8** — the shipping configuration;
//! * **complete hash** — the EV8 information vector with unconstrained
//!   hashing (Fig 7's best);
//! * **4x64K 2Bc-gskew ghist** — the 512 Kbit unconstrained conventional-
//!   history reference.
//!
//! Expected shape: address-only wordlines lose accuracy (unbalanced table
//! use); the engineered EV8 functions come close to the unconstrained
//! 512 Kbit reference.

use ev8_core::{Ev8Config, Ev8Predictor, HistoryMode, IndexScheme, WordlineMode};

use crate::experiments::{factory, mean_mispki, run_grid, suite_flat_traces, Factory};
use crate::report::{fmt_mispki, ExperimentReport, TextTable};

fn ev8_variant(wordline: WordlineMode, path_bit: bool) -> Ev8Config {
    Ev8Config::ev8()
        .with_history(HistoryMode::Lghist {
            path_bit,
            three_blocks_old: true,
            path_patch: true,
        })
        .with_index(IndexScheme::Ev8 { wordline })
}

/// The Fig 9 roster.
pub fn configs() -> Vec<(String, Factory)> {
    vec![
        (
            "address only, no path".into(),
            factory(|| Ev8Predictor::new(ev8_variant(WordlineMode::AddressOnly, false))),
        ),
        (
            "address only, path".into(),
            factory(|| Ev8Predictor::new(ev8_variant(WordlineMode::AddressOnly, true))),
        ),
        (
            "no path".into(),
            factory(|| Ev8Predictor::new(ev8_variant(WordlineMode::HistoryAndAddress, false))),
        ),
        (
            "EV8".into(),
            factory(|| Ev8Predictor::new(Ev8Config::ev8())),
        ),
        (
            "complete hash".into(),
            factory(|| Ev8Predictor::new(Ev8Config::lghist_512k(HistoryMode::ev8()))),
        ),
        (
            "4x64K 2Bc-gskew ghist".into(),
            factory(|| Ev8Predictor::new(Ev8Config::unconstrained_512k())),
        ),
    ]
}

/// Regenerates Figure 9.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let traces = suite_flat_traces(scale);
    let configs = configs();
    let grid = run_grid(&traces, &configs, workers);

    let mut headers = vec!["wordline / index functions".into()];
    headers.extend(traces.iter().map(|t| t.name().to_owned()));
    headers.push("mean".into());
    let mut table = TextTable::new(headers);
    for ((label, _), row) in configs.iter().zip(&grid) {
        let mut cells = vec![label.clone()];
        cells.extend(row.iter().map(|r| fmt_mispki(r.misp_per_ki())));
        cells.push(fmt_mispki(mean_mispki(row)));
        table.row(cells);
    }
    ExperimentReport {
        title: "Figure 9: effect of wordline indices and index-function constraints".into(),
        table,
        notes: vec![
            "rows 1-4 are 352Kb EV8-constrained; rows 5-6 are 512Kb unconstrained references"
                .into(),
            "expected: EV8 close to complete hash; address-only wordline worse".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn roster_has_six_rows() {
        let c = configs();
        assert_eq!(c.len(), 6);
        // EV8-constrained rows carry the 352 Kbit budget.
        for (_, f) in &c[..4] {
            assert_eq!(f().storage_bits(), 352 * 1024);
        }
        for (_, f) in &c[4..] {
            assert_eq!(f().storage_bits(), 512 * 1024);
        }
    }

    #[test]
    fn ev8_reasonably_close_to_complete_hash() {
        let r = report(0.002, default_workers());
        let mean = |row: usize| -> f64 { r.table.cell(row, 9).parse().unwrap() };
        let ev8 = mean(3);
        let complete = mean(4);
        assert!(
            ev8 <= complete * 1.6 + 1.0,
            "EV8 ({ev8}) should be in the neighbourhood of complete hash ({complete})"
        );
    }
}
