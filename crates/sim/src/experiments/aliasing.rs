//! Aliasing-pressure study — the motivation for the de-aliased predictor
//! family (§4 of the paper, after Michaud/Seznec/Uhlig \[15\] and
//! Talcott et al. \[24\]).
//!
//! Fixing the storage budget and growing the *static branch footprint*
//! raises table interference. "Aliased" schemes (gshare) degrade fastest;
//! the skewed majority vote of e-gskew tolerates single-bank collisions;
//! 2Bc-gskew adds the bimodal/meta protection for biased branches. The
//! paper's Fig 5 shows the end result at SPEC footprints; this experiment
//! exposes the underlying trend.

use std::sync::Arc;

use ev8_predictors::egskew::EGskew;
use ev8_predictors::gshare::Gshare;
use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
use ev8_trace::Trace;
use ev8_workloads::{BehaviorMix, ProgramSpec};

use crate::report::{ExperimentReport, TextTable};
use crate::simulator::simulate;
use crate::sweep::run_parallel;

/// The footprint points swept (static conditional branches).
pub const FOOTPRINTS: [usize; 5] = [250, 1000, 4000, 12000, 32000];

/// A gcc-like program with a configurable static footprint.
fn workload(statics: usize, instructions: u64) -> Trace {
    ProgramSpec {
        name: format!("footprint-{statics}"),
        seed: 0xA11A5 ^ statics as u64,
        static_branches: statics,
        instructions,
        branch_density: 140.0,
        mix: BehaviorMix::default_integer(),
        hotness_skew: 0.85,
        call_fraction: 0.1,
        noise: 0.4,
        chain_length_bias: 0.7,
    }
    .generate()
}

/// Regenerates the aliasing study. `scale` is the fraction of a
/// 20M-instruction probe run.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let instructions = ((20_000_000.0 * scale) as u64).max(50_000);
    type Row = (f64, f64, f64);
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = FOOTPRINTS
        .iter()
        .map(|&statics| {
            Box::new(move || {
                let t = Arc::new(workload(statics, instructions));
                // Matched 128Kbit-class budgets: gshare 64K entries,
                // e-gskew 3x16K, 2Bc-gskew 4x16K.
                let gshare = simulate(Gshare::new(16, 14), &t).misp_per_ki();
                let egskew = simulate(EGskew::new(14, 14), &t).misp_per_ki();
                let gskew =
                    simulate(TwoBcGskew::new(TwoBcGskewConfig::equal(14, 14)), &t).misp_per_ki();
                (gshare, egskew, gskew)
            }) as Box<dyn FnOnce() -> Row + Send>
        })
        .collect();
    let rows = run_parallel(jobs, workers);

    let mut table = TextTable::new(vec![
        "static branches".into(),
        "gshare 128Kb".into(),
        "e-gskew 96Kb".into(),
        "2Bc-gskew 128Kb".into(),
    ]);
    for (&statics, (g, e, t)) in FOOTPRINTS.iter().zip(&rows) {
        table.row(vec![
            statics.to_string(),
            format!("{g:.3}"),
            format!("{e:.3}"),
            format!("{t:.3}"),
        ]);
    }
    ExperimentReport {
        title: "Aliasing pressure: misp/KI vs static footprint at fixed budget".into(),
        table,
        notes: vec![
            "growing footprints raise interference; de-aliased schemes degrade more slowly".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn dealiased_schemes_win_under_pressure() {
        let r = report(0.1, default_workers());
        assert_eq!(r.table.len(), FOOTPRINTS.len());
        // At the largest footprint, 2Bc-gskew must beat gshare.
        let last = FOOTPRINTS.len() - 1;
        let gshare: f64 = r.table.cell(last, 1).parse().unwrap();
        let gskew: f64 = r.table.cell(last, 3).parse().unwrap();
        assert!(
            gskew < gshare,
            "2Bc-gskew ({gskew}) must beat gshare ({gshare}) at 32K statics"
        );
    }

    #[test]
    fn interference_grows_with_footprint() {
        let r = report(0.05, default_workers());
        let first: f64 = r.table.cell(0, 1).parse().unwrap();
        let last: f64 = r.table.cell(FOOTPRINTS.len() - 1, 1).parse().unwrap();
        assert!(
            last > first,
            "gshare should degrade from {first} as footprint grows, got {last}"
        );
    }
}
