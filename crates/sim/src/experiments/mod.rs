//! The paper's evaluation, experiment by experiment.
//!
//! Each submodule regenerates one table or figure of §8 on the synthetic
//! SPECINT95 suite (see `ev8-workloads` for the substitution rationale):
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — EV8 predictor configuration |
//! | [`table2`] | Table 2 — benchmark characteristics |
//! | [`table3`] | Table 3 — lghist/ghist compression ratio |
//! | [`fig5`] | Fig 5 — accuracy of global-history schemes |
//! | [`fig6`] | Fig 6 — penalty of `log2(size)` history lengths |
//! | [`fig7`] | Fig 7 — information-vector quality |
//! | [`fig8`] | Fig 8 — reducing table sizes |
//! | [`fig9`] | Fig 9 — wordline/index-function constraints |
//! | [`fig10`] | Fig 10 — limits of global history (4×1M predictor) |
//! | [`delayed_update`] | §8.1.1 — immediate vs commit-time update |
//!
//! Extension studies beyond the paper's figures:
//!
//! | Module | Topic |
//! |---|---|
//! | [`frontend`] | §2 substrate — line predictor / RAS / fetch blocks |
//! | [`history_sweep`] | §8.2 — history-length tuning methodology |
//! | [`smt`] | §3 — SMT interference on shared tables |
//! | [`backup`] | §9 — perceptron backup hierarchy |
//! | [`update_traffic`] | §4.2 — partial-update accuracy and write traffic |
//! | [`aliasing`] | §4 — interference vs static footprint |
//! | [`attribution`] | observability — per-component provenance, §6 invariants |
//! | [`h2p`] | taxonomy — the EV8/TAGE gap concentrates in the H2P branch tail |
//! | [`seu`] | robustness — misp/KI under soft-error injection |
//! | [`scaling`] | calibration — misp/KI convergence with trace length |
//! | [`shootout`] | cross-generation — bimodal/gshare/2Bc-gskew/TAGE at the EV8 budget |
//!
//! Every `report(scale, workers)` takes `scale` as a fraction of the
//! paper's 100M-instruction traces (1.0 = full length) and a worker
//! thread count for the parallel sweep.

use std::sync::Arc;

use ev8_predictors::observe::ConditionalBranchPredictor;
use ev8_predictors::BranchPredictor;
use ev8_trace::{FlatTrace, Trace};
use ev8_workloads::spec95;

use crate::batch::simulate_many;
use crate::metrics::SimResult;
use crate::sweep::run_parallel;

pub mod aliasing;
pub mod attribution;
pub mod backup;
pub mod delayed_update;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod frontend;
pub mod h2p;
pub mod history_sweep;
pub mod scaling;
pub mod seu;
pub mod shootout;
pub mod smt;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod update_traffic;

/// A thread-safe predictor factory: experiments describe each predictor
/// configuration as a named constructor, instantiated fresh per
/// (config, benchmark) job.
pub type Factory = Arc<dyn Fn() -> Box<dyn BranchPredictor> + Send + Sync>;

/// Builds a [`Factory`] from a constructor closure.
pub fn factory<P, F>(f: F) -> Factory
where
    P: BranchPredictor + 'static,
    F: Fn() -> P + Send + Sync + 'static,
{
    Arc::new(move || Box::new(f()))
}

/// Like [`Factory`], but over the unified
/// [`ConditionalBranchPredictor`] capability bundle: the fault campaign
/// ([`seu`]) and the attribution study ([`attribution`]) need subjects
/// that also expose storage arrays and per-branch provenance, so they
/// quantify over this trait instead of a concrete predictor type.
pub type UnifiedFactory = Arc<dyn Fn() -> Box<dyn ConditionalBranchPredictor> + Send + Sync>;

/// Builds a [`UnifiedFactory`] from a constructor closure.
pub fn unified_factory<P, F>(f: F) -> UnifiedFactory
where
    P: ConditionalBranchPredictor + 'static,
    F: Fn() -> P + Send + Sync + 'static,
{
    Arc::new(move || Box::new(f()))
}

/// The eight SPECINT95-analogue traces at the given scale (fraction of
/// 100M instructions), served from the process-wide trace cache.
///
/// Uncached benchmarks generate in parallel (one worker per distinct
/// key); on a warm cache this returns shared `Arc`s without generating
/// anything.
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn suite_traces(scale: f64) -> Vec<Arc<Trace>> {
    assert!(scale > 0.0, "scale must be positive");
    let jobs: Vec<Box<dyn FnOnce() -> Arc<Trace> + Send>> = spec95::NAMES
        .iter()
        .map(|name| {
            Box::new(move || spec95::cached(name, scale).expect("all suite names are known"))
                as Box<dyn FnOnce() -> Arc<Trace> + Send>
        })
        .collect();
    run_parallel(jobs, crate::sweep::default_workers())
}

/// The eight suite traces as packed [`FlatTrace`] views, for config
/// sweeps through [`run_grid`]/[`simulate_many`]. Generation and
/// flattening are cached and parallel, like [`suite_traces`].
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn suite_flat_traces(scale: f64) -> Vec<Arc<FlatTrace>> {
    assert!(scale > 0.0, "scale must be positive");
    let jobs: Vec<Box<dyn FnOnce() -> Arc<FlatTrace> + Send>> = spec95::NAMES
        .iter()
        .map(|name| {
            Box::new(move || spec95::cached_flat(name, scale).expect("all suite names are known"))
                as Box<dyn FnOnce() -> Arc<FlatTrace> + Send>
        })
        .collect();
    run_parallel(jobs, crate::sweep::default_workers())
}

/// Runs the full (config × trace) sweep; returns `results[config][trace]`.
///
/// Parallelism covers benchmarks — one job per trace — and batching
/// covers configurations: each job instantiates every config fresh and
/// steps all of them over its trace in a single [`simulate_many`] pass,
/// so the trace's memory traffic is paid once regardless of how many
/// configurations sweep over it. Results are bit-identical to the old
/// one-job-per-(config, trace) serial grid.
pub fn run_grid(
    traces: &[Arc<FlatTrace>],
    configs: &[(String, Factory)],
    workers: usize,
) -> Vec<Vec<SimResult>> {
    let factories: Vec<Factory> = configs.iter().map(|(_, f)| Arc::clone(f)).collect();
    let jobs: Vec<Box<dyn FnOnce() -> Vec<SimResult> + Send>> = traces
        .iter()
        .map(|trace| {
            let factories = factories.clone();
            let trace = Arc::clone(trace);
            Box::new(move || {
                let mut predictors: Vec<Box<dyn BranchPredictor>> =
                    factories.iter().map(|f| f()).collect();
                simulate_many(&mut predictors, &trace)
            }) as Box<dyn FnOnce() -> Vec<SimResult> + Send>
        })
        .collect();
    let per_trace = run_parallel(jobs, workers); // [trace][config]
    let mut grid: Vec<Vec<SimResult>> = (0..configs.len())
        .map(|_| Vec::with_capacity(traces.len()))
        .collect();
    for row in per_trace {
        debug_assert_eq!(row.len(), configs.len());
        for (config_idx, result) in row.into_iter().enumerate() {
            grid[config_idx].push(result);
        }
    }
    grid
}

/// Arithmetic mean of misp/KI over a row of results (the cross-benchmark
/// average column the figures eyeball).
pub fn mean_mispki(results: &[SimResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.misp_per_ki()).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev8_predictors::bimodal::Bimodal;

    #[test]
    fn suite_traces_generates_all_eight() {
        let traces = suite_traces(0.0005);
        assert_eq!(traces.len(), 8);
        for (t, name) in traces.iter().zip(spec95::NAMES) {
            assert_eq!(t.name(), name);
            assert!(t.conditional_count() > 0);
        }
    }

    #[test]
    fn flat_suite_mirrors_aos_suite() {
        let flat = suite_flat_traces(0.0005);
        let aos = suite_traces(0.0005);
        assert_eq!(flat.len(), 8);
        for (f, t) in flat.iter().zip(&aos) {
            assert_eq!(f.name(), t.name());
            assert_eq!(f.len(), t.len());
            assert_eq!(f.instruction_count(), t.instruction_count());
        }
    }

    #[test]
    fn grid_shape_and_ordering() {
        let traces = suite_flat_traces(0.0002);
        let configs = vec![
            ("bimodal-small".to_owned(), factory(|| Bimodal::new(8))),
            ("bimodal-large".to_owned(), factory(|| Bimodal::new(14))),
        ];
        let grid = run_grid(&traces, &configs, 4);
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].len(), 8);
        for (row, _) in grid.iter().zip(&configs) {
            for (r, t) in row.iter().zip(&traces) {
                assert_eq!(r.trace, t.name());
            }
        }
        let m = mean_mispki(&grid[0]);
        assert!(m.is_finite() && m >= 0.0);
    }

    #[test]
    fn grid_matches_serial_simulation() {
        let traces = suite_flat_traces(0.0002);
        let configs = vec![("bimodal".to_owned(), factory(|| Bimodal::new(10)))];
        let grid = run_grid(&traces, &configs, 2);
        for (r, t) in grid[0].iter().zip(suite_traces(0.0002)) {
            assert_eq!(*r, crate::simulator::simulate(Bimodal::new(10), &t));
        }
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean_mispki(&[]), 0.0);
    }
}
