//! Per-prediction attribution study — where the EV8's predictions come
//! from, component by component.
//!
//! The paper assigns each 2Bc-gskew bank a *role* (Table 1, §4): BIM
//! (h=4) covers short-history, almost-bias-only branches; G1 (h=21)
//! captures long-history correlation; Meta steers between the bimodal
//! side and the e-gskew majority per branch. This experiment runs the
//! full EV8 predictor over the suite through the observability layer
//! ([`crate::observe`]) and reports, per benchmark: which side provided
//! predictions, how often the chooser's decision mattered and was right,
//! the §4.2 partial-update action mix, the §6 bank-collision invariant
//! (always 0), and how concentrated mispredictions are on the worst
//! static branches.
//!
//! Every cell is cross-checked in-job: [`Attribution::reconcile`] must
//! accept the run before the row is emitted, so a table you can read is
//! a table whose counters sum exactly.
//!
//! Set `EV8_OBSERVE_JSONL=<path>` to also dump the full per-prediction
//! event stream (one JSON object per dynamic branch, all benchmarks
//! concatenated in suite order) for offline analysis. At default scales
//! this is millions of events — use small scales.

use std::path::Path;
use std::sync::Arc;

use ev8_core::Ev8Predictor;
use ev8_trace::Trace;
use ev8_workloads::spec95;

use crate::metrics::SimResult;
use crate::observe::{simulate_observed, Attribution, JsonlObserver};
use crate::report::{fmt_mispki, ExperimentReport, TextTable};
use crate::sweep::run_parallel;

/// How many top-mispredicting static branches the concentration column
/// aggregates.
pub const TOP_N: usize = 8;

/// One benchmark's observed run.
type Cell = (SimResult, Attribution, Option<Vec<u8>>);

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 * 100.0 / den as f64
    }
}

/// Regenerates the attribution study. `scale` is the fraction of a
/// 100M-instruction trace per benchmark. The JSONL stream is written only
/// if the `EV8_OBSERVE_JSONL` environment variable names a path.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let jsonl = std::env::var_os("EV8_OBSERVE_JSONL").map(std::path::PathBuf::from);
    report_with_jsonl(scale, workers, jsonl.as_deref())
}

/// [`report`] with an explicit JSONL destination (used by tests to avoid
/// racing on process-global environment variables).
pub fn report_with_jsonl(scale: f64, workers: usize, jsonl: Option<&Path>) -> ExperimentReport {
    let mut r = report_for(
        scale,
        workers,
        jsonl,
        "EV8 (352 Kbit)",
        super::unified_factory(Ev8Predictor::ev8),
    );
    r.notes.push(
        "Meta steers toward the majority on history-friendly benchmarks; BIM covers \
         short-history branches (Table 1's h=4 role)"
            .into(),
    );
    r
}

/// [`report_with_jsonl`] for an arbitrary predictor: the study quantifies
/// over the unified capability trait (see [`super::UnifiedFactory`]), so
/// any family with an observed step runs through the same attribution
/// pipeline — [`Attribution::reconcile`] accepts degenerate
/// single-component provenance (gshare, bimodal, TAGE's provider/alt
/// mapping) exactly as it accepts the EV8's, because the reconciliation
/// arithmetic is over provenance invariants, not 2Bc-gskew specifics.
/// `label` names the subject in the report title.
pub fn report_for(
    scale: f64,
    workers: usize,
    jsonl: Option<&Path>,
    label: &str,
    factory: super::UnifiedFactory,
) -> ExperimentReport {
    let traces: Vec<Arc<Trace>> = spec95::NAMES
        .iter()
        .map(|name| spec95::cached(name, scale).expect("benchmark names are known"))
        .collect();

    let want_jsonl = jsonl.is_some();
    let jobs: Vec<Box<dyn FnOnce() -> Cell + Send>> = traces
        .iter()
        .map(|trace| {
            let trace = Arc::clone(trace);
            let factory = Arc::clone(&factory);
            Box::new(move || {
                let mut attr = Attribution::new();
                let (result, events) = if want_jsonl {
                    // Each job streams into its own buffer; the buffers are
                    // concatenated in suite order after the parallel run,
                    // so the file is deterministic regardless of worker
                    // interleaving.
                    let mut pair = (
                        attr,
                        JsonlObserver::new(Vec::<u8>::new(), trace.name().to_owned()),
                    );
                    let result = simulate_observed(factory(), &trace, &mut pair);
                    attr = pair.0;
                    (result, Some(pair.1.into_inner()))
                } else {
                    let result = simulate_observed(factory(), &trace, &mut attr);
                    (result, None)
                };
                attr.reconcile(&result)
                    .expect("attribution counters must reconcile with the scoreboard");
                (result, attr, events)
            }) as Box<dyn FnOnce() -> Cell + Send>
        })
        .collect();
    let cells = run_parallel(jobs, workers);

    if let Some(path) = jsonl {
        let mut bytes = Vec::new();
        for (_, _, events) in &cells {
            bytes.extend_from_slice(events.as_deref().unwrap_or_default());
        }
        std::fs::write(path, bytes).expect("EV8_OBSERVE_JSONL path must be writable");
    }

    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "misp/KI".into(),
        "majority used %".into(),
        "meta decisive %".into(),
        "meta ok %".into(),
        "skip %".into(),
        "strengthen %".into(),
        "chooser-first %".into(),
        "retrain %".into(),
        "bank collisions".into(),
        format!("top-{TOP_N} misp share %"),
    ]);

    for (result, attr, _) in &cells {
        let top: u64 = attr
            .top_mispredicting(TOP_N)
            .iter()
            .map(|(_, s)| s.mispredictions)
            .sum();
        table.row(vec![
            result.trace.clone(),
            fmt_mispki(result.misp_per_ki()),
            format!("{:.1}", pct(attr.provider_majority, attr.predictions)),
            format!("{:.1}", pct(attr.meta_decisive, attr.predictions)),
            format!("{:.1}", pct(attr.meta_correct, attr.meta_decisive)),
            format!("{:.1}", pct(attr.actions[0], attr.predictions)),
            format!("{:.1}", pct(attr.actions[1], attr.predictions)),
            format!("{:.1}", pct(attr.actions[2], attr.predictions)),
            format!("{:.1}", pct(attr.actions[3], attr.predictions)),
            attr.bank_collisions.unwrap_or(0).to_string(),
            format!("{:.1}", pct(top, result.mispredictions)),
        ]);
    }

    ExperimentReport {
        title: format!("Attribution: per-component provenance of {label} predictions (observed)"),
        table,
        notes: vec![
            "every row reconciled exactly: provider/action/vote sums match the scoreboard".into(),
            "bank collisions are the §6 invariant — 0 by construction (unbanked subjects show 0)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    fn parse(cell: &str) -> f64 {
        cell.parse().expect("cell is numeric")
    }

    #[test]
    fn one_reconciled_row_per_benchmark() {
        let r = report_with_jsonl(0.002, default_workers(), None);
        assert_eq!(r.table.len(), spec95::NAMES.len());
        for (row, name) in spec95::NAMES.iter().enumerate() {
            assert_eq!(r.table.cell(row, 0), *name);
            // §6 invariant: zero collisions everywhere.
            assert_eq!(r.table.cell(row, 9), "0");
            // The four action percentages cover every prediction.
            let action_sum: f64 = (5..=8).map(|c| parse(r.table.cell(row, c))).sum();
            assert!(
                (action_sum - 100.0).abs() < 0.3,
                "{name}: action mix sums to {action_sum}"
            );
            // Shares are percentages.
            for col in 2..=8 {
                let v = parse(r.table.cell(row, col));
                assert!((0.0..=100.0).contains(&v), "{name} col {col}: {v}");
            }
            let top_share = parse(r.table.cell(row, 10));
            assert!((0.0..=100.0).contains(&top_share));
        }
    }

    #[test]
    fn jsonl_dump_covers_the_whole_suite_in_order() {
        let path = std::env::temp_dir().join(format!("ev8_attr_jsonl_{}", std::process::id()));
        let r = report_with_jsonl(0.0005, default_workers(), Some(&path));
        assert_eq!(r.table.len(), spec95::NAMES.len());
        let text = std::fs::read_to_string(&path).expect("dump written");
        std::fs::remove_file(&path).ok();
        // One finish line per benchmark, in suite order.
        let finishes: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with(r#"{"event":"finish""#))
            .collect();
        assert_eq!(finishes.len(), spec95::NAMES.len());
        for (line, name) in finishes.iter().zip(spec95::NAMES) {
            assert!(line.contains(&format!(r#""trace":"{name}""#)), "{line}");
            assert!(line.contains(r#""bank_collisions":0"#));
        }
        assert!(text
            .lines()
            .next()
            .unwrap()
            .contains(r#""event":"prediction""#));
    }

    #[test]
    fn attribution_pipeline_accepts_any_unified_predictor() {
        // The seam the unified trait removed: the same observed loop and
        // reconciliation, driven by a TAGE factory. Reconcile runs
        // in-job (a failure panics the row), so a full table *is* the
        // assertion that TAGE's provider/alt provenance sums exactly.
        use ev8_predictors::tage::{Tage, TageConfig};
        let r = report_for(
            0.001,
            default_workers(),
            None,
            "TAGE (352 Kbit)",
            crate::experiments::unified_factory(|| Tage::new(TageConfig::ev8_budget())),
        );
        assert!(r.title.contains("TAGE (352 Kbit)"));
        assert_eq!(r.table.len(), spec95::NAMES.len());
        for (row, name) in spec95::NAMES.iter().enumerate() {
            // Unbanked subject: the §6 column reads 0.
            assert_eq!(r.table.cell(row, 9), "0");
            let action_sum: f64 = (5..=8).map(|c| parse(r.table.cell(row, c))).sum();
            assert!(
                (action_sum - 100.0).abs() < 0.3,
                "{name}: action mix sums to {action_sum}"
            );
        }
    }

    #[test]
    fn report_is_deterministic() {
        let a = report_with_jsonl(0.001, default_workers(), None);
        let b = report_with_jsonl(0.001, 1, None);
        assert_eq!(a.table.to_csv(), b.table.to_csv());
    }
}
