//! Figure 10: the limits of global history — a brute-force 4×1M-entry
//! (8 Mbit) 2Bc-gskew versus the EV8-class predictors.
//!
//! Expected shape (§9): "this brute force approach would have limited
//! return except for applications with a very large number of branches" —
//! the 4×1M predictor helps mostly on the large-footprint benchmarks
//! (gcc, go, vortex analogues) and barely elsewhere.

use ev8_core::{Ev8Config, Ev8Predictor};
use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};

use crate::experiments::{factory, mean_mispki, run_grid, suite_flat_traces, Factory};
use crate::report::{fmt_mispki, ExperimentReport, TextTable};

/// The Fig 10 roster.
pub fn configs() -> Vec<(String, Factory)> {
    vec![
        (
            "EV8 (352Kb)".into(),
            factory(|| Ev8Predictor::new(Ev8Config::ev8())),
        ),
        (
            "2Bc-gskew 512Kb".into(),
            factory(|| TwoBcGskew::new(TwoBcGskewConfig::size_512k())),
        ),
        (
            "2Bc-gskew 4x1M (8Mb)".into(),
            factory(|| TwoBcGskew::new(TwoBcGskewConfig::size_4x1m())),
        ),
    ]
}

/// Regenerates Figure 10.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let traces = suite_flat_traces(scale);
    let configs = configs();
    let grid = run_grid(&traces, &configs, workers);

    let mut headers = vec!["predictor".into()];
    headers.extend(traces.iter().map(|t| t.name().to_owned()));
    headers.push("mean".into());
    let mut table = TextTable::new(headers);
    for ((label, _), row) in configs.iter().zip(&grid) {
        let mut cells = vec![label.clone()];
        cells.extend(row.iter().map(|r| fmt_mispki(r.misp_per_ki())));
        cells.push(fmt_mispki(mean_mispki(row)));
        table.row(cells);
    }
    ExperimentReport {
        title: "Figure 10: limits of global history (4x1M-entry 2Bc-gskew)".into(),
        table,
        notes: vec![
            "expected: the 8Mb predictor helps mostly on large-footprint benchmarks (gcc/go/vortex)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn budgets_ascend() {
        let c = configs();
        let budgets: Vec<u64> = c.iter().map(|(_, f)| f().storage_bits()).collect();
        assert_eq!(budgets, vec![352 * 1024, 512 * 1024, 8 * 1024 * 1024]);
    }

    #[test]
    fn big_predictor_in_the_same_band() {
        // Cold-start dominates short runs for 4M-entry tables (the paper
        // runs 100M instructions); here we only assert the brute-force
        // predictor stays in the same band — the "limited return" shape
        // at full scale is recorded in EXPERIMENTS.md.
        let r = report(0.01, default_workers());
        let mean = |row: usize| -> f64 { r.table.cell(row, 9).parse().unwrap() };
        assert!(
            mean(2) <= mean(1) * 1.4 + 0.5,
            "8Mb {} vs 512Kb {}",
            mean(2),
            mean(1)
        );
    }
}
