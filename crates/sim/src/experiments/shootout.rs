//! Cross-generation shootout: the EV8's 2Bc-gskew against its
//! predecessor designs (bimodal, gshare) and its successor (TAGE), all
//! at (or bounded by) the EV8's 352 Kbit storage budget, over the full
//! Table 2 suite.
//!
//! The paper's central question is how much accuracy the 2Bc-gskew
//! organization buys per storage bit under real implementation
//! constraints. Holding the budget fixed and varying the *organization*
//! across predictor generations answers it in both directions:
//!
//! * backward — gshare and bimodal at the same budget show what the
//!   skewed three-bank + chooser structure adds over single-table
//!   schemes (the Fig 5 argument, here at *equal* storage instead of the
//!   paper's mixed sizes);
//! * forward — TAGE at the same budget (`TageConfig::ev8_budget`, exact
//!   to the bit) shows what partial tags and geometric history lengths
//!   would later buy over the EV8 scheme.
//!
//! The roster quantifies over `Box<dyn BranchPredictor>` exactly like
//! every other experiment; the unified `ConditionalBranchPredictor`
//! bundle guarantees each member also composes with the fault injector
//! and the attribution observer (asserted by the unit suite here).
//!
//! Storage note: gshare and bimodal tables are power-of-two sized, so
//! they cannot land on 352 Kbit exactly; the roster uses the largest
//! power-of-two budget that fits (256 Kbit), which *favors* neither — an
//! undersized competitor argues the 2Bc-gskew/TAGE advantage could be
//! storage, so the report also carries the per-benchmark win counts the
//! acceptance gate checks.

use ev8_predictors::bimodal::Bimodal;
use ev8_predictors::gshare::Gshare;
use ev8_predictors::tage::{Tage, TageConfig};
use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};

use crate::experiments::{factory, mean_mispki, run_grid, suite_flat_traces, Factory};
use crate::metrics::SimResult;
use crate::report::{fmt_mispki, ExperimentReport, TextTable};

/// The shootout roster (label, constructor), oldest scheme first:
/// bimodal 256 Kbit, gshare 256 Kbit (largest power-of-two within the
/// budget, history = log2(entries)), 2Bc-gskew 352 Kbit (the EV8 Table 1
/// geometry), TAGE 352 Kbit (`TageConfig::ev8_budget`).
pub fn configs() -> Vec<(String, Factory)> {
    vec![
        ("bimodal 256Kb".into(), factory(|| Bimodal::new(17))),
        ("gshare 256Kb".into(), factory(|| Gshare::new(17, 17))),
        (
            "2Bc-gskew 352Kb".into(),
            factory(|| TwoBcGskew::new(TwoBcGskewConfig::ev8_size())),
        ),
        (
            "TAGE 352Kb".into(),
            factory(|| Tage::new(TageConfig::ev8_budget())),
        ),
    ]
}

/// Per-benchmark wins of row `a` over row `b` (strictly lower misp/KI).
fn wins(a: &[SimResult], b: &[SimResult]) -> usize {
    a.iter()
        .zip(b)
        .filter(|(x, y)| x.misp_per_ki() < y.misp_per_ki())
        .count()
}

/// Runs the shootout grid; returns `results[config][benchmark]` in
/// [`configs`] order.
pub fn grid(scale: f64, workers: usize) -> Vec<Vec<SimResult>> {
    run_grid(&suite_flat_traces(scale), &configs(), workers)
}

/// Regenerates the cross-generation shootout report.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let traces = suite_flat_traces(scale);
    let configs = configs();
    let grid = run_grid(&traces, &configs, workers);

    let mut headers = vec!["predictor".into()];
    headers.extend(traces.iter().map(|t| t.name().to_owned()));
    headers.push("mean".into());
    let mut table = TextTable::new(headers);
    for ((label, _), row) in configs.iter().zip(&grid) {
        let mut cells = vec![label.clone()];
        cells.extend(row.iter().map(|r| fmt_mispki(r.misp_per_ki())));
        cells.push(fmt_mispki(mean_mispki(row)));
        table.row(cells);
    }
    let n = traces.len();
    ExperimentReport {
        title: "Shootout: predictor generations at the EV8 storage budget (misp/KI)".into(),
        table,
        notes: vec![
            format!(
                "TAGE beats gshare on {}/{n}, 2Bc-gskew on {}/{n} benchmarks",
                wins(&grid[3], &grid[1]),
                wins(&grid[3], &grid[2]),
            ),
            format!(
                "2Bc-gskew beats gshare on {}/{n} benchmarks",
                wins(&grid[2], &grid[1]),
            ),
            "equal-budget roster: 352Kb exact for 2Bc-gskew/TAGE; 256Kb (largest \
             power-of-two that fits) for bimodal/gshare"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;
    use ev8_predictors::observe::ConditionalBranchPredictor;

    #[test]
    fn roster_is_budget_exact() {
        let c = configs();
        assert_eq!(c.len(), 4);
        let budgets: Vec<u64> = c.iter().map(|(_, f)| f().storage_bits()).collect();
        assert_eq!(
            budgets,
            vec![256 * 1024, 256 * 1024, 352 * 1024, 352 * 1024]
        );
    }

    #[test]
    fn roster_qualifies_for_the_unified_trait() {
        // Every shootout member must carry the full capability bundle —
        // the property that lets the SEU campaign and the attribution
        // observer run over the same roster without per-family glue.
        let unified: Vec<Box<dyn ConditionalBranchPredictor>> = vec![
            Box::new(Bimodal::new(17)),
            Box::new(Gshare::new(17, 17)),
            Box::new(TwoBcGskew::new(TwoBcGskewConfig::ev8_size())),
            Box::new(Tage::new(TageConfig::ev8_budget())),
        ];
        for (p, (label, f)) in unified.iter().zip(configs()) {
            assert_eq!(p.storage_bits(), f().storage_bits(), "{label}");
            let bits: usize = p.fault_arrays().iter().map(|a| a.bits).sum();
            assert_eq!(bits as u64, p.storage_bits(), "{label}");
        }
    }

    /// The acceptance gate: at equal storage, TAGE must beat gshare on
    /// misp/KI on at least 6 of the 8 Table 2 benchmarks (it wins all 8
    /// on the synthetic suite; the margin guards against trace-generator
    /// drift, not expected variance).
    #[test]
    fn tage_beats_gshare_on_at_least_six_of_eight() {
        let grid = grid(0.002, default_workers());
        let w = wins(&grid[3], &grid[1]);
        assert!(w >= 6, "TAGE won only {w}/8 benchmarks against gshare");
    }

    #[test]
    fn small_scale_run_produces_sane_numbers() {
        let r = report(0.001, default_workers());
        assert_eq!(r.table.len(), 4);
        for row in 0..4 {
            for col in 1..=8 {
                let v: f64 = r.table.cell(row, col).parse().unwrap();
                assert!(v.is_finite() && (0.0..200.0).contains(&v));
            }
        }
        assert!(r.notes[0].starts_with("TAGE beats gshare on"));
    }
}
