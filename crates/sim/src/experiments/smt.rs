//! SMT interference study (§3 of the paper): per-thread prediction
//! quality when two workloads share the EV8's tables, with per-thread
//! history registers.
//!
//! "When independent threads are running, they compete for predictor
//! table entries. ... when several parallel threads are spawned by a
//! single application ... parallel threads — from the same application —
//! benefit from constructive aliasing."

use ev8_core::smt::SmtEv8;
use ev8_core::{Ev8Config, Ev8Predictor};
use ev8_trace::Trace;
use ev8_workloads::spec95;

use crate::report::{ExperimentReport, TextTable};
use crate::simulator::simulate;

/// misp/KI of thread 0's workload when co-running `traces` round-robin on
/// one shared-table SMT predictor.
pub fn corun_mispki(traces: &[Trace]) -> Vec<f64> {
    let smt = SmtEv8::new(Ev8Config::ev8(), traces.len());
    let mut iters: Vec<_> = traces.iter().map(|t| t.iter()).collect();
    let mut misses = vec![0u64; traces.len()];
    loop {
        let mut progressed = false;
        for (tid, it) in iters.iter_mut().enumerate() {
            if let Some(rec) = it.next() {
                progressed = true;
                if let Some(pred) = smt.predict_and_update(tid, rec) {
                    if pred != rec.outcome {
                        misses[tid] += 1;
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    traces
        .iter()
        .zip(&misses)
        .map(|(t, &m)| m as f64 * 1000.0 / t.instruction_count() as f64)
        .collect()
}

/// Regenerates the SMT interference study: each benchmark alone, with a
/// phase-shifted thread of the same application, and with the hard `go`
/// analogue as co-runner.
pub fn report(scale: f64) -> ExperimentReport {
    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "alone".into(),
        "+ same app".into(),
        "+ go".into(),
    ]);
    let go = spec95::cached("go", scale).expect("go exists");
    for name in ["li", "m88ksim", "vortex", "perl"] {
        let full = spec95::cached(name, 2.0 * scale).expect("suite benchmark");
        // Two phase-shifted halves of the same program: the model for two
        // parallel threads of one application.
        let (a, b) = full.split_at(full.len() / 2);
        let alone = simulate(Ev8Predictor::ev8(), &a).misp_per_ki();
        let same = corun_mispki(&[a.clone(), b])[0];
        let with_go = corun_mispki(&[a, (*go).clone()])[0];
        table.row(vec![
            name.to_owned(),
            format!("{alone:.3}"),
            format!("{same:.3}"),
            format!("{with_go:.3}"),
        ]);
    }
    ExperimentReport {
        title: "SMT interference (§3): shared tables, per-thread history".into(),
        table,
        notes: vec![
            "same-application co-running aliases constructively; an unrelated hard co-runner \
             (go) interferes destructively"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_app_interferes_less_than_go() {
        let r = report(0.004);
        assert_eq!(r.table.len(), 4);
        let mut favourable = 0;
        for row in 0..4 {
            let same: f64 = r.table.cell(row, 2).parse().unwrap();
            let with_go: f64 = r.table.cell(row, 3).parse().unwrap();
            if same <= with_go + 0.2 {
                favourable += 1;
            }
        }
        assert!(
            favourable >= 3,
            "same-app co-running should interfere less than go ({favourable}/4)"
        );
    }

    #[test]
    fn corun_returns_one_value_per_thread() {
        let t1 = (*spec95::cached("li", 0.001).unwrap()).clone();
        let t2 = (*spec95::cached("go", 0.001).unwrap()).clone();
        let v = corun_mispki(&[t1, t2]);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|m| m.is_finite() && *m >= 0.0));
    }
}
