//! Update-policy ablation (§4.2-4.3): accuracy *and* counter-write
//! traffic of the partial update policy versus naive total update.
//!
//! The partial update policy exists for two reasons the paper spells
//! out: accuracy ("partial update policy was shown to result in higher
//! prediction accuracy") and **write bandwidth** — "a correct prediction
//! requires only one read of the prediction array (at fetch time) and
//! (at most) one write of the hysteresis array (at commit time)". This
//! experiment measures both on the same streams.

use std::sync::Arc;

use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig, UpdatePolicy};
use ev8_predictors::BranchPredictor;
use ev8_trace::Trace;

use crate::experiments::suite_traces;
use crate::report::{ExperimentReport, TextTable};
use crate::sweep::run_parallel;

/// (misp/KI, prediction writes per 1K branches, hysteresis writes per 1K
/// branches) for one policy over one trace.
fn run_policy(trace: &Trace, policy: UpdatePolicy) -> (f64, f64, f64) {
    let mut p = TwoBcGskew::new(TwoBcGskewConfig::size_512k().with_update_policy(policy));
    let mut mispredictions = 0u64;
    let mut branches = 0u64;
    for rec in trace.iter() {
        if let Some(pred) = p.predict_and_update(rec) {
            branches += 1;
            if pred != rec.outcome {
                mispredictions += 1;
            }
        }
    }
    let (pw, hw) = p.write_traffic();
    let kb = branches.max(1) as f64 / 1000.0;
    (
        mispredictions as f64 * 1000.0 / trace.instruction_count().max(1) as f64,
        pw as f64 / kb,
        hw as f64 / kb,
    )
}

/// Regenerates the update-policy traffic study.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    type Row = ((f64, f64, f64), (f64, f64, f64));
    let traces = suite_traces(scale);
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = traces
        .iter()
        .map(|t| {
            let t: Arc<Trace> = Arc::clone(t);
            Box::new(move || {
                (
                    run_policy(&t, UpdatePolicy::Partial),
                    run_policy(&t, UpdatePolicy::Total),
                )
            }) as Box<dyn FnOnce() -> Row + Send>
        })
        .collect();
    let rows = run_parallel(jobs, workers);

    let mut table = TextTable::new(vec![
        "benchmark".into(),
        "partial misp/KI".into(),
        "total misp/KI".into(),
        "partial writes/KB (pred+hyst)".into(),
        "total writes/KB (pred+hyst)".into(),
    ]);
    for (t, ((pm, pp, ph), (tm, tp, th))) in traces.iter().zip(&rows) {
        table.row(vec![
            t.name().to_owned(),
            format!("{pm:.3}"),
            format!("{tm:.3}"),
            format!("{:.0}+{:.0}", pp, ph),
            format!("{:.0}+{:.0}", tp, th),
        ]);
    }
    ExperimentReport {
        title: "Update-policy ablation (§4.2): accuracy and counter-write traffic".into(),
        table,
        notes: vec![
            "partial update should win on accuracy AND write fewer counters".into(),
            "writes/KB = array writes per 1000 conditional branches".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn partial_writes_less_on_every_benchmark() {
        let r = report(0.002, default_workers());
        assert_eq!(r.table.len(), 8);
        for row in 0..8 {
            let parse_pair = |cell: &str| -> (f64, f64) {
                let mut it = cell.split('+');
                (
                    it.next().unwrap().parse().unwrap(),
                    it.next().unwrap().parse().unwrap(),
                )
            };
            let (pp, ph) = parse_pair(r.table.cell(row, 3));
            let (tp, th) = parse_pair(r.table.cell(row, 4));
            assert!(
                pp + ph < tp + th,
                "{}: partial {pp}+{ph} should write less than total {tp}+{th}",
                r.table.cell(row, 0)
            );
        }
    }
}
