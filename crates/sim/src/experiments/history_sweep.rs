//! History-length sweep (§4.5, §5.3, §8.2): locate the best G1 history
//! length of the 4×64K 2Bc-gskew and gshare's best length on this
//! substrate, mirroring the paper's tuning methodology ("for all the
//! predictors, the best history length results are presented").

use std::sync::Arc;

use ev8_predictors::gshare::Gshare;
use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
use ev8_trace::Trace;

use crate::experiments::suite_traces;
use crate::report::{ExperimentReport, TextTable};
use crate::sweep::run_parallel;

/// The history lengths swept.
pub const LENGTHS: [u32; 8] = [0, 4, 8, 12, 16, 20, 24, 27];

/// Mean misp/KI over the suite for a 2Bc-gskew whose G1 history is `h`
/// (G0/Meta scale proportionally, as §4.5 prescribes).
fn gskew_mean(traces: &[Arc<Trace>], h: u32, workers: usize) -> f64 {
    let jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = traces
        .iter()
        .map(|t| {
            let t = Arc::clone(t);
            Box::new(move || {
                let g0 = (h * 17 / 27).min(h);
                let meta = (h * 20 / 27).min(h);
                let cfg = TwoBcGskewConfig::size_512k().with_history_lengths(0, g0, h, meta);
                crate::simulator::simulate(TwoBcGskew::new(cfg), &t).misp_per_ki()
            }) as Box<dyn FnOnce() -> f64 + Send>
        })
        .collect();
    let v = run_parallel(jobs, workers);
    v.iter().sum::<f64>() / v.len() as f64
}

fn gshare_mean(traces: &[Arc<Trace>], h: u32, workers: usize) -> f64 {
    let jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = traces
        .iter()
        .map(|t| {
            let t = Arc::clone(t);
            Box::new(move || crate::simulator::simulate(Gshare::new(20, h), &t).misp_per_ki())
                as Box<dyn FnOnce() -> f64 + Send>
        })
        .collect();
    let v = run_parallel(jobs, workers);
    v.iter().sum::<f64>() / v.len() as f64
}

/// Regenerates the history-length sweep.
pub fn report(scale: f64, workers: usize) -> ExperimentReport {
    let traces = suite_traces(scale);
    let mut table = TextTable::new(vec![
        "G1 / gshare history".into(),
        "2Bc-gskew 512Kb mean".into(),
        "gshare 2Mb mean".into(),
    ]);
    let mut best_gskew = (0u32, f64::INFINITY);
    let mut best_gshare = (0u32, f64::INFINITY);
    for &h in &LENGTHS {
        let g = gskew_mean(&traces, h, workers);
        let s = gshare_mean(&traces, h, workers);
        if g < best_gskew.1 {
            best_gskew = (h, g);
        }
        if s < best_gshare.1 {
            best_gshare = (h, s);
        }
        table.row(vec![h.to_string(), format!("{g:.3}"), format!("{s:.3}")]);
    }
    ExperimentReport {
        title: "History-length sweep (§8.2 tuning methodology)".into(),
        table,
        notes: vec![
            format!(
                "best: 2Bc-gskew G1 h={} ({:.3}), gshare h={} ({:.3})",
                best_gskew.0, best_gskew.1, best_gshare.0, best_gshare.1
            ),
            "the paper's optima: G1 27 (512Kb 2Bc-gskew), gshare 20".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::default_workers;

    #[test]
    fn sweep_produces_a_clear_optimum_above_zero() {
        let r = report(0.005, default_workers());
        assert_eq!(r.table.len(), LENGTHS.len());
        // Zero history must be the worst 2Bc-gskew configuration: the
        // hybrid degenerates to its bimodal side.
        let at_zero: f64 = r.table.cell(0, 1).parse().unwrap();
        let best = (0..LENGTHS.len())
            .map(|i| r.table.cell(i, 1).parse::<f64>().unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < at_zero,
            "some nonzero history ({best}) must beat zero history ({at_zero})"
        );
    }
}
