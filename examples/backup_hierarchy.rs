//! The §9 predictor hierarchy, live: line predictor → EV8 global-history
//! predictor → late perceptron backup. Shows how the confidence gate
//! trades override volume against precision on a hard benchmark.
//!
//! ```text
//! cargo run --release --example backup_hierarchy [benchmark] [scale]
//! ```

use ev8_core::backup::BackupHierarchy;
use ev8_core::Ev8Config;
use ev8_predictors::perceptron::Perceptron;
use ev8_predictors::BranchPredictor;
use ev8_workloads::spec95;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_owned());
    let scale: f64 = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.05);
    let spec = spec95::benchmark(&bench).unwrap_or_else(|| {
        panic!(
            "unknown benchmark {bench:?}; use one of {:?}",
            spec95::NAMES
        )
    });
    let trace = spec.generate_scaled(scale);
    println!(
        "backup hierarchy on {bench} ({} branches)\n",
        trace.conditional_count()
    );
    println!(
        "{:>10}  {:>12}  {:>12}  {:>10}  {:>10}  {:>9}",
        "confidence", "EV8 misp/KI", "hier misp/KI", "overrides", "correct", "precision"
    );

    for confidence in [1.0, 1.25, 1.5, 2.0, 3.0] {
        let mut h = BackupHierarchy::new(Ev8Config::ev8(), Perceptron::new(12, 32), confidence);
        for rec in trace.iter() {
            h.predict_and_update(rec);
        }
        let s = *h.stats();
        let ki = trace.instruction_count() as f64 / 1000.0;
        println!(
            "{:>10.2}  {:>12.3}  {:>12.3}  {:>10}  {:>10}  {:>8.1}%",
            confidence,
            s.primary_mispredictions as f64 / ki,
            s.hierarchy_mispredictions as f64 / ki,
            s.overrides,
            s.overrides_correct,
            s.override_precision() * 100.0
        );
    }
    println!();
    println!(
        "raising the confidence gate trades override volume (and resteer \
         traffic) for precision — the tuning knob of the paper's §9 proposal"
    );
}
