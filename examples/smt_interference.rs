//! Simultaneous multithreading and the branch predictor (§3 of the
//! paper): threads share the prediction tables but keep per-thread
//! history. Parallel threads *from the same application* benefit from
//! constructive aliasing; unrelated applications interfere.
//!
//! ```text
//! cargo run --release --example smt_interference
//! ```

use ev8_core::Ev8Predictor;
use ev8_sim::experiments::smt::corun_mispki;
use ev8_sim::simulate;
use ev8_workloads::spec95;

fn main() {
    let scale = 0.02;
    // Two phase-shifted halves of the same program: the model for two
    // parallel threads of one application.
    let full = spec95::benchmark("li")
        .unwrap()
        .generate_scaled(2.0 * scale);
    let (li_a, li_b) = full.split_at(full.len() / 2);
    let go = spec95::benchmark("go").unwrap().generate_scaled(scale);

    // Baseline: li alone on a single-threaded EV8.
    let solo = simulate(Ev8Predictor::ev8(), &li_a);
    println!(
        "li alone:                         {:.3} misp/KI",
        solo.misp_per_ki()
    );

    // Two parallel threads of the same application: constructive
    // aliasing — each thread trains table entries the other reuses.
    let same_app = corun_mispki(&[li_a.clone(), li_b]);
    println!(
        "li + li (shared tables, SMT):     {:.3} / {:.3} misp/KI  (constructive aliasing)",
        same_app[0], same_app[1]
    );

    // An unrelated co-runner: destructive interference on the shared
    // tables.
    let mixed = corun_mispki(&[li_a, go]);
    println!(
        "li + go (shared tables, SMT):     {:.3} / {:.3} misp/KI  (destructive interference)",
        mixed[0], mixed[1]
    );

    println!();
    println!(
        "the paper's §3 argument: with global history this degradation is \
         manageable (one history register per thread); a local-history \
         scheme would also have its first-level history tables polluted"
    );
}
