//! Quickstart: build the EV8 predictor, run it on a synthetic SPECINT95
//! benchmark, and compare against a couple of familiar baselines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ev8_core::Ev8Predictor;
use ev8_predictors::bimodal::Bimodal;
use ev8_predictors::gshare::Gshare;
use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
use ev8_sim::simulate;
use ev8_workloads::spec95;

fn main() {
    // A 2M-instruction slice of the compress analogue (the full suite
    // uses 100M-instruction traces; see the ev8-bench experiment bins).
    let trace = spec95::benchmark("compress")
        .expect("compress is part of the suite")
        .generate_scaled(0.02);
    println!(
        "workload: {} ({} instructions, {} conditional branches)",
        trace.name(),
        trace.instruction_count(),
        trace.conditional_count()
    );
    println!();

    // The shipping EV8 predictor: 352 Kbits, three-blocks-old compressed
    // history, conflict-free banking, engineered index functions.
    let ev8 = simulate(Ev8Predictor::ev8(), &trace);
    // The unconstrained 2Bc-gskew scheme it was derived from.
    let gskew = simulate(TwoBcGskew::new(TwoBcGskewConfig::size_512k()), &trace);
    // Textbook baselines.
    let gshare = simulate(Gshare::new(16, 16), &trace);
    let bimodal = simulate(Bimodal::new(14), &trace);

    for r in [&ev8, &gskew, &gshare, &bimodal] {
        println!(
            "{:<55} {:>8.3} misp/KI  ({:.2}% accuracy)",
            r.predictor,
            r.misp_per_ki(),
            r.accuracy() * 100.0
        );
    }
    println!();
    println!(
        "the EV8's 352 Kbits deliver accuracy in the range of the 512 Kbit \
         unconstrained scheme — the paper's headline claim"
    );
}
