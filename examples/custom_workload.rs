//! Build a custom synthetic workload, persist it with the binary trace
//! codec, read it back, and evaluate predictors on it — the workflow for
//! using this library on your own branch behaviour hypotheses.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use ev8_core::Ev8Predictor;
use ev8_predictors::gshare::Gshare;
use ev8_sim::simulate;
use ev8_trace::{codec, TraceStats};
use ev8_workloads::{BehaviorMix, H2pMix, ProgramSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hypothetical pointer-chasing workload: modest footprint, heavy
    // global correlation, a pinch of data-dependent noise.
    let spec = ProgramSpec {
        name: "pointer-chaser".into(),
        seed: 2024,
        static_branches: 600,
        instructions: 2_000_000,
        branch_density: 140.0,
        mix: BehaviorMix {
            biased: 0.30,
            loops: 0.10,
            patterns: 0.05,
            correlated: 0.50,
            random: 0.05,
            h2p: H2pMix::NONE,
        },
        hotness_skew: 0.9,
        call_fraction: 0.15,
        noise: 0.4,
        chain_length_bias: 0.7,
    };
    let trace = spec.generate();
    let stats = TraceStats::from_trace(&trace);
    println!("generated: {stats}");

    // Persist with the compact binary codec and read it back.
    let path = std::env::temp_dir().join("pointer_chaser.ev8t");
    codec::write_trace(BufWriter::new(File::create(&path)?), &trace)?;
    let on_disk = std::fs::metadata(&path)?.len();
    println!(
        "persisted to {} ({} bytes, {:.2} bytes/record)",
        path.display(),
        on_disk,
        on_disk as f64 / trace.len() as f64
    );
    let reloaded = codec::read_trace(BufReader::new(File::open(&path)?))?;
    assert_eq!(reloaded, trace);
    println!("round-trip verified");
    println!();

    // Evaluate.
    for result in [
        simulate(Ev8Predictor::ev8(), &reloaded),
        simulate(Gshare::new(16, 16), &reloaded),
    ] {
        println!(
            "{:<55} {:>8.3} misp/KI",
            result.predictor,
            result.misp_per_ki()
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
