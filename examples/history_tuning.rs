//! History-length tuning (§4.5, §5.3): sweep the G1 history length of a
//! 4×64K 2Bc-gskew and watch accuracy improve well past
//! `log2(entries) = 16` — the paper's "very long history" argument — then
//! degrade once the history outruns the workload's correlation depth.
//!
//! ```text
//! cargo run --release --example history_tuning [benchmark] [scale]
//! ```

use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
use ev8_sim::report::TextTable;
use ev8_sim::simulate;
use ev8_sim::sweep::{default_workers, run_parallel};
use ev8_workloads::spec95;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "li".to_owned());
    let scale: f64 = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.1);
    let spec = spec95::benchmark(&bench).unwrap_or_else(|| {
        panic!(
            "unknown benchmark {bench:?}; use one of {:?}",
            spec95::NAMES
        )
    });
    let trace = std::sync::Arc::new(spec.generate_scaled(scale));
    println!(
        "sweeping G1 history length on {} ({} branches)\n",
        bench,
        trace.conditional_count()
    );

    let lengths: Vec<u32> = vec![0, 4, 8, 12, 16, 20, 24, 27, 32, 40];
    let jobs: Vec<Box<dyn FnOnce() -> f64 + Send>> = lengths
        .iter()
        .map(|&h| {
            let trace = std::sync::Arc::clone(&trace);
            Box::new(move || {
                let cfg = TwoBcGskewConfig::size_512k().with_history_lengths(0, 17, h, 20);
                simulate(TwoBcGskew::new(cfg), &trace).misp_per_ki()
            }) as Box<dyn FnOnce() -> f64 + Send>
        })
        .collect();
    let results = run_parallel(jobs, default_workers());

    let mut table = TextTable::new(vec!["G1 history length".into(), "misp/KI".into()]);
    let mut best = (0u32, f64::INFINITY);
    for (&h, &m) in lengths.iter().zip(&results) {
        if m < best.1 {
            best = (h, m);
        }
        table.row(vec![h.to_string(), format!("{m:.3}")]);
    }
    println!("{table}");
    println!(
        "best length: {} (log2 of the 64K-entry table is 16 — the paper's \
         point is that the optimum usually lies beyond it)",
        best.0
    );
}
