//! Front-end walkthrough: how the EV8 fetches two 8-instruction blocks
//! per cycle and what its predictor pipeline sees — fetch-block
//! formation, the lghist compression ratio (Table 3), the conflict-free
//! bank sequence (§6) and the weak line predictor the branch predictor
//! backs up (§2).
//!
//! ```text
//! cargo run --release --example frontend_pipeline
//! ```

use ev8_core::banks::BankSequencer;
use ev8_core::fetch::{blocks_of, BlockStats};
use ev8_core::line_predictor::LinePredictor;
use ev8_core::pipeline::FrontEndPipeline;
use ev8_core::ras::{JumpPredictor, ReturnAddressStack};
use ev8_trace::BranchKind;
use ev8_workloads::spec95;

fn main() {
    let trace = spec95::benchmark("vortex")
        .expect("vortex is part of the suite")
        .generate_scaled(0.005);
    println!(
        "workload: {} ({} branch records)",
        trace.name(),
        trace.len()
    );
    println!();

    // 1. Fetch-block formation.
    let stats = BlockStats::from_trace(&trace);
    println!("fetch blocks:              {}", stats.blocks);
    println!(
        "mean block size:           {:.2} instructions",
        stats.mean_block_size()
    );
    println!(
        "blocks with cond. branches: {} ({:.1}%)",
        stats.blocks_with_conditionals,
        100.0 * stats.blocks_with_conditionals as f64 / stats.blocks as f64
    );
    println!(
        "lghist compression ratio:   {:.2} branches per history bit (Table 3)",
        stats.lghist_compression_ratio()
    );
    println!();

    // 2. Conflict-free banking: replay the block sequence through the
    // bank computation and verify no two successive blocks share a bank.
    let blocks = blocks_of(&trace);
    let mut seq = BankSequencer::new();
    let mut counts = [0u64; 4];
    let mut prev = None;
    let mut conflicts = 0u64;
    for b in &blocks {
        let bank = seq.next_bank(b.start);
        counts[bank as usize] += 1;
        if prev == Some(bank) {
            conflicts += 1;
        }
        prev = Some(bank);
    }
    println!("bank usage over {} blocks: {:?}", blocks.len(), counts);
    println!("successive-block bank conflicts: {conflicts} (guaranteed 0 by construction)");
    assert_eq!(conflicts, 0);
    println!();

    // 3. The line predictor: fast but weak — the reason the EV8 needs the
    // powerful backing conditional branch predictor at all.
    let mut lp = LinePredictor::new(12);
    let mut prev_block = None;
    for b in &blocks {
        if let Some(pb) = prev_block {
            lp.train(pb, b.start);
        }
        prev_block = Some(b.start);
    }
    println!(
        "line predictor accuracy:   {:.1}% over {} next-block predictions",
        lp.accuracy() * 100.0,
        lp.lookups()
    );
    println!("(low by design: single-cycle indexing, no real hashing — §2)");
    println!();

    // 4. The other PC-address-generator predictors: return address stack
    // and indirect jump predictor.
    let mut ras = ReturnAddressStack::new(8);
    let mut jp = JumpPredictor::new(10, 6);
    for rec in trace.iter() {
        match rec.kind {
            BranchKind::Call => ras.push(rec.pc.next()),
            BranchKind::Return => {
                ras.predict_return(rec.target);
            }
            BranchKind::IndirectJump => jp.train(rec.pc, rec.target),
            _ => {}
        }
    }
    println!(
        "return address stack:      {:.1}% over {} returns (8 entries)",
        ras.accuracy() * 100.0,
        ras.predictions()
    );
    println!();

    // 5. The whole thing as a cycle-level pipeline (Figs 1 and 3): two
    // blocks per cycle, single-ported banked arrays, resteer bubbles on
    // line-predictor mismatches.
    let stats = FrontEndPipeline::new(2).run(&trace);
    println!("cycle-level pipeline replay (resteer penalty 2 cycles):");
    println!("  cycles:           {}", stats.cycles);
    println!(
        "  fetch bandwidth:  {:.2} instructions/cycle",
        stats.fetch_bandwidth()
    );
    println!("  resteers:         {}", stats.resteers);
    println!(
        "  bank conflicts:   {} of {} array reads (guaranteed 0)",
        stats.bank_conflicts, stats.array_reads
    );
    assert_eq!(stats.bank_conflicts, 0);
}
