//! Shootout: every implemented prediction scheme over the whole
//! synthetic SPECINT95 suite, misp/KI per benchmark — a miniature,
//! extended version of the paper's Figure 5 including the schemes the
//! paper discusses but does not plot (local, tournament, agree,
//! perceptron).
//!
//! ```text
//! cargo run --release --example predictor_shootout [scale]
//! ```

use ev8_core::Ev8Predictor;
use ev8_predictors::agree::Agree;
use ev8_predictors::bimodal::Bimodal;
use ev8_predictors::bimode::Bimode;
use ev8_predictors::egskew::EGskew;
use ev8_predictors::gshare::Gshare;
use ev8_predictors::local::LocalPredictor;
use ev8_predictors::perceptron::Perceptron;
use ev8_predictors::tage::{Tage, TageConfig};
use ev8_predictors::tournament::Tournament;
use ev8_predictors::twobcgskew::{TwoBcGskew, TwoBcGskewConfig};
use ev8_predictors::yags::Yags;
use ev8_sim::experiments::{factory, mean_mispki, run_grid, suite_flat_traces, Factory};
use ev8_sim::report::{fmt_mispki, TextTable};
use ev8_sim::sweep::default_workers;

fn roster() -> Vec<(String, Factory)> {
    vec![
        ("bimodal 32Kb".into(), factory(|| Bimodal::new(14))),
        ("gshare 128Kb".into(), factory(|| Gshare::new(16, 16))),
        ("local 13Kb".into(), factory(|| LocalPredictor::new(10, 10))),
        (
            "tournament (21264)".into(),
            factory(Tournament::alpha_21264),
        ),
        ("e-gskew 384Kb".into(), factory(|| EGskew::new(16, 16))),
        ("agree 36Kb".into(), factory(|| Agree::new(12, 14, 12))),
        ("bimode 544Kb".into(), factory(Bimode::paper_544k)),
        ("YAGS 288Kb".into(), factory(Yags::paper_288k)),
        (
            "perceptron 139Kb".into(),
            factory(|| Perceptron::new(10, 16)),
        ),
        (
            "2Bc-gskew 512Kb".into(),
            factory(|| TwoBcGskew::new(TwoBcGskewConfig::size_512k())),
        ),
        ("EV8 352Kb".into(), factory(Ev8Predictor::ev8)),
        (
            "TAGE 352Kb".into(),
            factory(|| Tage::new(TageConfig::ev8_budget())),
        ),
    ]
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.05);
    let workers = default_workers();
    println!("predictor shootout at scale {scale} ({workers} workers)\n");

    let traces = suite_flat_traces(scale);
    let configs = roster();
    let grid = run_grid(&traces, &configs, workers);

    let mut headers = vec!["predictor".to_owned()];
    headers.extend(traces.iter().map(|t| t.name().to_owned()));
    headers.push("mean".into());
    let mut table = TextTable::new(headers);
    for ((label, _), row) in configs.iter().zip(&grid) {
        let mut cells = vec![label.clone()];
        cells.extend(row.iter().map(|r| fmt_mispki(r.misp_per_ki())));
        cells.push(fmt_mispki(mean_mispki(row)));
        table.row(cells);
    }
    println!("{table}");
    println!("misp/KI, lower is better; budgets in parentheses are storage bits");
    println!(
        "note: small scales over-weight cold-start for the long-history schemes; \
         run with scale 1.0 for steady-state numbers (see EXPERIMENTS.md)"
    );
}
